"""Tests for the Section 4 memory-requirement models."""

import pytest

from conftest import rand_pair
from repro.core.machine import MachineParams
from repro.core.memory import MEMORY_MODELS, memory_table

M = MachineParams(ts=10.0, tw=2.0)


class TestFormulas:
    def test_cannon_memory_efficient(self):
        m = MEMORY_MODELS["cannon"]
        assert m.memory_efficient
        # total is 3n^2 regardless of p: same as serial
        assert m.total_words(64, 16) == pytest.approx(3 * 64**2)
        assert m.blowup(64, 1024) == pytest.approx(1.0)

    def test_simple_blowup_sqrt_p(self):
        m = MEMORY_MODELS["simple"]
        assert not m.memory_efficient
        # O(n^2 sqrt(p)) total: blowup grows as sqrt(p)
        b16 = m.blowup(64, 16)
        b64 = m.blowup(64, 64)
        assert b64 / b16 == pytest.approx(2.0, rel=0.2)

    def test_berntsen_per_processor(self):
        m = MEMORY_MODELS["berntsen"]
        # paper: 2*n^2/p + n^2/p^(2/3)
        assert m.words_per_processor(16, 8) == pytest.approx(2 * 256 / 8 + 256 / 4)
        assert not m.memory_efficient

    def test_gk_blowup_cuberoot_p(self):
        m = MEMORY_MODELS["gk"]
        b8 = m.blowup(64, 8)
        b64 = m.blowup(64, 64)
        assert b64 / b8 == pytest.approx(2.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            MEMORY_MODELS["cannon"].words_per_processor(0, 4)


class TestAgainstSimulation:
    def test_simple_peak_matches_model(self):
        # the simple driver reports each rank's actual peak word count
        from repro.algorithms.simple import run_simple

        n, p = 16, 16
        A, B = rand_pair(n, seed=1)
        res = run_simple(A, B, p, M)
        peaks = [ret[2] for ret in res.sim.returns]
        model = MEMORY_MODELS["simple"].words_per_processor(n, p)
        assert max(peaks) == pytest.approx(model)

    def test_cannon_blocks_match_model(self):
        # Cannon holds exactly A, B, C blocks: 3*n^2/p words
        n, p = 16, 16
        model = MEMORY_MODELS["cannon"].words_per_processor(n, p)
        assert model == 3 * (n * n // p)


class TestTable:
    def test_table_rows(self):
        rows = memory_table(64, 64)
        keys = {r["algorithm"] for r in rows}
        assert keys == {"simple", "cannon", "fox", "berntsen", "dns", "gk"}
        by_key = {r["algorithm"]: r for r in rows}
        # ordering of total memory at this point: cannon <= fox < gk < simple
        assert by_key["cannon"]["total_words"] <= by_key["fox"]["total_words"]
        assert by_key["gk"]["total_words"] > by_key["cannon"]["total_words"]

    def test_efficient_flags(self):
        rows = memory_table(32, 16)
        flags = {r["algorithm"]: r["memory_efficient"] for r in rows}
        assert flags["cannon"] and flags["fox"]
        assert not flags["simple"] and not flags["berntsen"] and not flags["gk"]
