"""Unit tests for the SPMD collectives: correctness AND emergent cost."""

import math

import numpy as np
import pytest

from repro.core.machine import MachineParams
from repro.simulator.collectives import (
    allgather_recursive_doubling,
    allgather_ring,
    barrier,
    bcast_binomial,
    my_index,
    reduce_binomial,
    reduce_scatter_halving,
    sendrecv,
    shift_cyclic,
    words_of,
)
from repro.simulator.engine import Engine, run_spmd
from repro.simulator.errors import ProgramError
from repro.simulator.topology import FullyConnected, Hypercube


MACHINE = MachineParams(ts=10.0, tw=2.0)


def run_group(p, body, machine=MACHINE, topo=None):
    """Run `body(info, group)` on every rank of a size-p machine."""
    topo = topo or FullyConnected(p)
    group = list(range(p))

    def factory(info):
        return body(info, group)

    return run_spmd(topo, machine, factory)


class TestWordsOf:
    def test_array(self):
        assert words_of(np.zeros((3, 4))) == 12

    def test_scalar(self):
        assert words_of(3.5) == 1

    def test_nested(self):
        assert words_of([np.zeros(3), np.zeros((2, 2))]) == 7


class TestMyIndex:
    def test_found(self, machine):
        def body(info, group):
            return my_index(info, group)
            yield

        res = run_group(4, body)
        assert res.returns == [0, 1, 2, 3]

    def test_missing_raises(self, machine):
        def body(info, group):
            my_index(info, [99])
            yield

        with pytest.raises(ProgramError):
            run_group(2, body)


class TestSendrecv:
    def test_ring_exchange(self):
        def body(info, group):
            p = len(group)
            nxt, prv = (info.rank + 1) % p, (info.rank - 1) % p
            got = yield from sendrecv(info, nxt, info.rank * 10, prv)
            return got

        res = run_group(4, body)
        assert res.returns == [30, 0, 10, 20]


class TestBcastBinomial:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    @pytest.mark.parametrize("root", [0, 1])
    def test_delivers_everywhere(self, p, root):
        if root >= p:
            pytest.skip("root outside group")

        def body(info, group):
            payload = np.arange(4.0) if my_index(info, group) == root else None
            out = yield from bcast_binomial(info, group, root, payload)
            return out.sum()

        res = run_group(p, body)
        assert all(v == 6.0 for v in res.returns)

    def test_non_power_of_two_group(self):
        def body(info, group):
            payload = "data" if my_index(info, group) == 2 else None
            out = yield from bcast_binomial(info, group, 2, payload)
            return out

        res = run_group(6, body)
        assert res.returns == ["data"] * 6

    def test_cost_on_hypercube_subcube(self):
        # one-to-all broadcast of m words over 2^k ranks: (ts + tw*m) * k
        p, m = 8, 50

        def body(info, group):
            payload = np.zeros(m) if my_index(info, group) == 0 else None
            yield from bcast_binomial(info, group, 0, payload)

        res = run_group(p, body, topo=Hypercube(3))
        expected = (MACHINE.ts + MACHINE.tw * m) * math.log2(p)
        assert res.parallel_time == pytest.approx(expected)

    def test_group_of_one(self):
        def body(info, group):
            out = yield from bcast_binomial(info, [info.rank], 0, "me")
            return out

        res = run_group(2, body)
        assert res.returns == ["me", "me"]


class TestReduceBinomial:
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_sum_at_root(self, p):
        def body(info, group):
            out = yield from reduce_binomial(info, group, 0, np.array([float(info.rank)]))
            return None if out is None else float(out[0])

        res = run_group(p, body)
        assert res.returns[0] == sum(range(p))
        assert all(v is None for v in res.returns[1:])

    def test_nonzero_root(self):
        def body(info, group):
            out = yield from reduce_binomial(info, group, 2, np.array([1.0]))
            return None if out is None else float(out[0])

        res = run_group(4, body)
        assert res.returns[2] == 4.0

    def test_custom_op(self):
        def body(info, group):
            out = yield from reduce_binomial(
                info, group, 0, info.rank, op=max, nwords=1
            )
            return out

        res = run_group(8, body)
        assert res.returns[0] == 7

    def test_charge_op_adds_compute(self):
        def body(info, group):
            yield from reduce_binomial(
                info, group, 0, np.zeros(10), charge_op=lambda x: 0.5 * x.size
            )

        res = run_group(2, body)
        assert res.stats[0].compute_time == 5.0

    def test_cost_on_hypercube(self):
        p, m = 8, 40

        def body(info, group):
            yield from reduce_binomial(info, group, 0, np.zeros(m))

        res = run_group(p, body, topo=Hypercube(3))
        expected = (MACHINE.ts + MACHINE.tw * m) * math.log2(p)
        assert res.parallel_time == pytest.approx(expected)


class TestAllgatherRecursiveDoubling:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_gathers_in_order(self, p):
        def body(info, group):
            out = yield from allgather_recursive_doubling(info, group, info.rank * 11)
            return out

        res = run_group(p, body)
        expected = [r * 11 for r in range(p)]
        assert all(v == expected for v in res.returns)

    def test_non_power_of_two_rejected(self):
        def body(info, group):
            yield from allgather_recursive_doubling(info, group, 0)

        with pytest.raises(ProgramError):
            run_group(6, body)

    def test_cost_matches_hypercube_all_to_all_bcast(self):
        # ts*log g + tw*m*(g-1): volumes double each round
        p, m = 8, 24

        def body(info, group):
            yield from allgather_recursive_doubling(info, group, np.zeros(m))

        res = run_group(p, body, topo=Hypercube(3))
        expected = MACHINE.ts * math.log2(p) + MACHINE.tw * m * (p - 1)
        assert res.parallel_time == pytest.approx(expected)


class TestAllgatherRing:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_gathers_in_order(self, p):
        def body(info, group):
            out = yield from allgather_ring(info, group, chr(ord("a") + info.rank))
            return "".join(out)

        res = run_group(p, body)
        expected = "".join(chr(ord("a") + r) for r in range(p))
        assert all(v == expected for v in res.returns)

    def test_cost_is_g_minus_1_steps(self):
        p, m = 5, 30

        def body(info, group):
            yield from allgather_ring(info, group, np.zeros(m))

        res = run_group(p, body)
        assert res.parallel_time == pytest.approx((p - 1) * (MACHINE.ts + MACHINE.tw * m))


class TestReduceScatterHalving:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_pieces_sum_to_total(self, p):
        data_of = {r: np.arange(16.0) + r for r in range(p)}

        def body(info, group):
            piece, lo, hi = yield from reduce_scatter_halving(
                info, group, data_of[info.rank].reshape(4, 4)
            )
            return piece, lo, hi

        res = run_group(p, body)
        total = np.zeros(16)
        covered = []
        for piece, lo, hi in res.returns:
            total[lo:hi] += piece
            covered.append((lo, hi))
        expected = sum(data_of.values())
        assert np.allclose(total, expected)
        # intervals tile [0, 16) exactly
        covered.sort()
        assert covered[0][0] == 0 and covered[-1][1] == 16
        for (a0, a1), (b0, b1) in zip(covered, covered[1:]):
            assert a1 == b0

    def test_non_power_of_two_rejected(self):
        def body(info, group):
            yield from reduce_scatter_halving(info, group, np.zeros(8))

        with pytest.raises(ProgramError):
            run_group(3, body)

    def test_volume_halves_each_round(self):
        # total volume per rank: m/2 + m/4 + ... = m*(g-1)/g
        p, m = 4, 32

        def body(info, group):
            yield from reduce_scatter_halving(
                info, group, np.zeros(m), charge_adds=False
            )

        res = run_group(p, body, topo=Hypercube(2))
        comm = MACHINE.ts * math.log2(p) + MACHINE.tw * m * (p - 1) / p
        assert res.parallel_time == pytest.approx(comm)

    def test_adds_charged(self):
        def body(info, group):
            yield from reduce_scatter_halving(info, group, np.zeros(8))

        res = run_group(2, body)
        assert res.stats[0].compute_time == 4.0  # one merge of 4 elements


class TestShiftCyclic:
    @pytest.mark.parametrize("offset", [-2, -1, 0, 1, 3])
    def test_shift(self, offset):
        p = 6

        def body(info, group):
            got = yield from shift_cyclic(info, group, offset, info.rank)
            return got

        res = run_group(p, body)
        assert res.returns == [(r - offset) % p for r in range(p)]

    def test_zero_offset_free(self):
        def body(info, group):
            got = yield from shift_cyclic(info, group, 0, info.rank)
            return got

        res = run_group(4, body)
        assert res.parallel_time == 0.0

    def test_cost_one_step(self):
        m = 25

        def body(info, group):
            yield from shift_cyclic(info, group, -1, np.zeros(m))

        res = run_group(4, body)
        assert res.parallel_time == pytest.approx(MACHINE.ts + MACHINE.tw * m)


class TestBarrierHelper:
    def test_barrier(self):
        def body(info, group):
            yield from barrier(info)
            return "ok"

        res = run_group(3, body)
        assert res.returns == ["ok"] * 3
