"""Autopilot generation and the end-to-end campaign acceptance
properties: seeded reproducibility and exact resume after SIGKILL."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign.autopilot import PROFILES, AutopilotProfile, generate_battery, generate_scenario
from repro.campaign.database import CampaignDB
from repro.campaign.oracles import OracleConfig
from repro.campaign.runner import run_campaign

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


class TestGeneration:
    def test_same_seed_same_battery(self):
        a = generate_battery(123, 200, PROFILES["smoke"])
        b = generate_battery(123, 200, PROFILES["smoke"])
        assert [s.scenario_id for s in a] == [s.scenario_id for s in b]
        assert len({s.scenario_id for s in a}) == 200

    def test_different_seeds_differ(self):
        a = generate_battery(0, 20, PROFILES["smoke"])
        b = generate_battery(1, 20, PROFILES["smoke"])
        assert {s.scenario_id for s in a} != {s.scenario_id for s in b}

    def test_scenarios_are_plain_python(self):
        # numpy scalars would poison the canonical JSON fingerprint
        for index in range(30):
            s = generate_scenario(7, index, PROFILES["default"])
            assert type(s.seed) is int
            assert all(type(v) is int for v in s.n_values + s.p_values)
            assert type(s.machine.ts) is float
            assert type(s.scheduler) is str
            s.scenario_id  # must fingerprint cleanly

    def test_generation_covers_fault_kinds_and_schedulers(self):
        battery = generate_battery(3, 120, PROFILES["default"])
        kinds = set()
        for s in battery:
            plan = s.fault_plan
            if plan.is_null:
                kinds.add("none")
            if plan.drop_rate:
                kinds.add("drops")
            if plan.straggler_rate:
                kinds.add("stragglers")
            if plan.degrade_rate:
                kinds.add("degrade")
            if plan.crash_times:
                kinds.add("crash")
        assert kinds == {"none", "drops", "stragglers", "degrade", "crash"}
        assert {s.scheduler for s in battery} == {"ready", "rescan", "heap"}
        assert {s.topology for s in battery} == {"hypercube", "fully-connected"}

    def test_crash_scenarios_are_survivable_by_construction(self):
        for s in generate_battery(11, 150, PROFILES["default"]):
            if s.fault_plan.crash_times:
                assert s.fault_plan.checkpoint_interval is not None
                for rank, _ in s.fault_plan.crash_times:
                    assert rank < min(s.p_values)
            if s.fault_plan.drop_rate:
                assert s.fault_plan.drop_rate <= 0.2
                assert s.fault_plan.timeout > 0.0

    def test_count_validation(self):
        with pytest.raises(ValueError, match="count"):
            generate_battery(0, 0, PROFILES["smoke"])

    def test_broken_profile_fails_with_context(self):
        bad = AutopilotProfile(name="bad", square_p_pool=(3,), cube_p_pool=(3,),
                               n_pool=(4,))
        with pytest.raises(ValueError, match="no valid scenario.*slot 0"):
            generate_scenario(0, 0, bad)


class TestReproducibility:
    def test_two_runs_of_a_200_scenario_battery_are_byte_identical(self, tmp_path):
        # acceptance criterion: same seed => identical run DB and report
        battery = generate_battery(2024, 200, PROFILES["smoke"])
        cfg = OracleConfig(divergence=False)  # halves cost; divergence is
        # covered per-scenario in test_campaign_executor
        s1 = run_campaign(battery, str(tmp_path / "a"), oracles=cfg)
        s2 = run_campaign(battery, str(tmp_path / "b"), oracles=cfg)
        assert s1.fingerprint == s2.fingerprint
        a = (tmp_path / "a.jsonl").read_bytes()
        b = (tmp_path / "b.jsonl").read_bytes()
        assert a == b
        assert s1.failed == 0
        # the seeded battery is clean: any anomaly here is a real bug
        assert s1.anomalous == 0 and s1.anomalies == 0


class TestKillResume:
    def test_sigkill_mid_battery_then_resume_is_bit_for_bit(self, tmp_path):
        # acceptance criterion: SIGKILL a live campaign subprocess, resume,
        # and the run database must equal the uninterrupted run exactly
        env = {**os.environ, "PYTHONPATH": SRC}
        args = [
            sys.executable, "-m", "repro", "campaign", "autopilot",
            "--seed", "99", "--count", "8", "--profile", "smoke",
        ]

        full = subprocess.run(
            [*args, "--db", str(tmp_path / "full")],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert full.returncode == 0, full.stderr

        proc = subprocess.Popen(
            [*args, "--db", str(tmp_path / "killed")],
            env={**env, "REPRO_CAMPAIGN_SCENARIO_DELAY": "0.4"},
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        jsonl = tmp_path / "killed.jsonl"
        deadline = time.monotonic() + 120
        # wait until it is provably mid-battery (>= 1 record past the header)
        while time.monotonic() < deadline:
            if jsonl.exists() and len(jsonl.read_bytes().splitlines()) >= 2:
                break
            time.sleep(0.02)
        else:  # pragma: no cover - diagnostic path
            proc.kill()
            pytest.fail("campaign subprocess never wrote a record")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)

        killed_bytes = jsonl.read_bytes()
        full_bytes = (tmp_path / "full.jsonl").read_bytes()
        assert killed_bytes != full_bytes  # it really died early

        resume = subprocess.run(
            [sys.executable, "-m", "repro", "campaign", "resume",
             "--db", str(tmp_path / "killed")],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert resume.returncode == 0, resume.stderr
        assert jsonl.read_bytes() == full_bytes
        assert (tmp_path / "killed.report.json").read_bytes() == \
            (tmp_path / "full.report.json").read_bytes()
