"""Tests for the DNS algorithm (Section 4.5), both forms."""

import numpy as np
import pytest

from conftest import rand_pair
from repro.algorithms.dns import (
    T_ADD,
    run_dns_block,
    run_dns_one_per_element,
)
from repro.core.machine import MachineParams
from repro.core.models import MODELS
from repro.simulator.topology import FullyConnected

MACHINE = MachineParams(ts=10.0, tw=2.0)


class TestOnePerElement:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_product_exact(self, n):
        A, B = rand_pair(n, seed=n)
        res = run_dns_one_per_element(A, B, MACHINE)
        assert res.p == n**3
        assert np.allclose(res.C, A @ B)

    def test_log_time(self):
        # O(log n) parallel time: doubling n adds only O(1) levels
        t = {}
        for n in (2, 4, 8):
            A, B = rand_pair(n, seed=1)
            t[n] = run_dns_one_per_element(A, B, MACHINE).parallel_time
        # growth is far below the 8x of the serial work
        assert t[8] / t[2] < 4

    def test_not_processor_efficient(self):
        # processor-time product far exceeds n^3 (Section 4.5.1)
        n = 4
        A, B = rand_pair(n, seed=1)
        res = run_dns_one_per_element(A, B, MACHINE)
        assert res.p * res.parallel_time > 5 * n**3

    def test_nonpow2_rejected_on_hypercube(self):
        A, B = rand_pair(3, seed=1)
        with pytest.raises(ValueError):
            run_dns_one_per_element(A, B, MACHINE)

    def test_fully_connected(self):
        n = 4
        A, B = rand_pair(n, seed=2)
        res = run_dns_one_per_element(A, B, MACHINE, topology=FullyConnected(n**3))
        assert np.allclose(res.C, A @ B)


class TestBlockVariant:
    @pytest.mark.parametrize("n,r", [(4, 1), (4, 2), (4, 4), (8, 2), (8, 4)])
    def test_product_exact(self, n, r):
        A, B = rand_pair(n, seed=n * 10 + r)
        res = run_dns_block(A, B, r, MACHINE)
        assert res.p == n * n * r
        assert np.allclose(res.C, A @ B)

    def test_r_equals_n_matches_one_per_element_layout(self):
        # r = n degenerates to p = n^3
        n = 4
        A, B = rand_pair(n, seed=3)
        res = run_dns_block(A, B, n, MACHINE)
        assert res.p == n**3
        assert np.allclose(res.C, A @ B)

    def test_r_validation(self):
        A, B = rand_pair(4, seed=0)
        with pytest.raises(ValueError):
            run_dns_block(A, B, 0, MACHINE)
        with pytest.raises(ValueError):
            run_dns_block(A, B, 8, MACHINE)  # r > n
        with pytest.raises(ValueError):
            run_dns_block(A, B, 3, MACHINE)  # r does not divide n

    def test_time_at_or_below_eq6(self):
        n, r = 8, 2
        A, B = rand_pair(n, seed=5)
        res = run_dns_block(A, B, r, MACHINE)
        model = MODELS["dns"].time(n, n * n * r, MACHINE)
        assert res.parallel_time <= model * 1.05

    def test_stage2_work_per_processor(self):
        # each processor does n/r fused multiply-adds plus reduce merges
        n, r = 8, 2
        A, B = rand_pair(n, seed=5)
        res = run_dns_block(A, B, r, MACHINE)
        p = n * n * r
        fma_work = p * (n / r)
        merge_work = (r - 1) * n * n * T_ADD
        assert res.sim.total_compute_time == pytest.approx(fma_work + merge_work)


class TestEfficiencyCeiling:
    def test_efficiency_stays_below_cap(self):
        # Section 5.3: E <= 1/(1 + 2*(ts+tw)) no matter the problem size
        machine = MachineParams(ts=0.25, tw=0.25)
        cap = MODELS["dns"].max_efficiency(machine)
        for n, r in ((4, 2), (8, 2), (8, 4)):
            A, B = rand_pair(n, seed=1)
            res = run_dns_block(A, B, r, machine)
            assert res.efficiency <= cap * 1.05
