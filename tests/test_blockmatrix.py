"""Unit tests for repro.blockops.blockmatrix."""

import numpy as np
import pytest

from repro.blockops.blockmatrix import BlockMatrix
from repro.blockops.partition import BlockSpec


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        m = rng.standard_normal((12, 8))
        bm = BlockMatrix.from_dense(m, 3, 2)
        assert np.array_equal(bm.to_dense(), m)

    def test_zeros(self):
        bm = BlockMatrix.zeros(6, 6, 3, 3)
        assert bm.shape == (6, 6)
        assert bm.grid == (3, 3)
        assert np.array_equal(bm.to_dense(), np.zeros((6, 6)))

    def test_bad_grid_shape(self, rng):
        spec = BlockSpec(4, 4, 2, 2)
        with pytest.raises(ValueError):
            BlockMatrix(spec, [[np.zeros((2, 2))]])

    def test_bad_block_shape(self):
        spec = BlockSpec(4, 4, 2, 2)
        blocks = [[np.zeros((2, 2)) for _ in range(2)] for _ in range(2)]
        blocks[1][1] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            BlockMatrix(spec, blocks)


class TestAccess:
    def test_block_get_set(self, rng):
        m = rng.standard_normal((8, 8))
        bm = BlockMatrix.from_dense(m, 2, 2)
        blk = bm.block(0, 1)
        assert np.array_equal(blk, m[0:4, 4:8])
        bm.set_block(0, 1, np.ones((4, 4)))
        assert np.array_equal(bm.to_dense()[0:4, 4:8], np.ones((4, 4)))

    def test_set_block_shape_check(self):
        bm = BlockMatrix.zeros(8, 8, 2, 2)
        with pytest.raises(ValueError):
            bm.set_block(0, 0, np.zeros((2, 2)))

    def test_block_index_check(self):
        bm = BlockMatrix.zeros(8, 8, 2, 2)
        with pytest.raises(IndexError):
            bm.block(2, 0)

    def test_iteration_order(self):
        bm = BlockMatrix.zeros(4, 4, 2, 2)
        coords = [(bi, bj) for bi, bj, _ in bm]
        assert coords == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_uneven_blocks(self, rng):
        m = rng.standard_normal((7, 5))
        bm = BlockMatrix.from_dense(m, 3, 2)
        assert bm.block(0, 0).shape == (3, 3)
        assert bm.block(2, 1).shape == (2, 2)
        assert np.array_equal(bm.to_dense(), m)
