"""Tests for the experiment harness (paper regeneration drivers)."""

import numpy as np
import pytest

from repro.experiments import (
    allport,
    figures45,
    figures123,
    section6,
    table1,
    technology,
    validation,
)
from repro.experiments.report import format_kv, format_table


class TestReportHelpers:
    def test_format_table_basic(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": float("inf")}])
        assert "a" in text and "10" in text and "inf" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_kv(self):
        text = format_kv("Title", {"key": 3.14159, "other": "x"})
        assert text.startswith("Title")
        assert "key" in text


class TestTable1:
    def test_all_rows_match_paper(self):
        rows = table1.run()
        assert len(rows) == 5
        assert all(r["matches"] for r in rows), rows

    def test_format(self):
        text = table1.format_text(table1.run())
        assert "berntsen" in text and "O(p^2)" in text


class TestFigures123:
    @pytest.mark.parametrize("fig", ["fig1", "fig2", "fig3"])
    def test_runs_and_formats(self, fig):
        res = figures123.run(fig, log2_p_max=20, log2_n_max=12, p_step=2, n_step=2)
        text = figures123.format_text(res)
        assert fig in text
        assert abs(sum(res.region_fractions().values()) - 1.0) < 1e-9

    def test_fig2_has_all_regions(self):
        res = figures123.run("fig2", log2_p_max=30, log2_n_max=16, p_step=2, n_step=2)
        assert {"gk", "berntsen", "cannon", "dns"} <= res.map.winners()

    def test_unknown_figure(self):
        with pytest.raises(ValueError):
            figures123.run("fig9")


class TestFigures45:
    def test_fig4_small(self):
        res = figures45.run_fig4(sizes=(16, 48, 96, 144))
        # GK wins at small n, Cannon at large n; crossover between 48 and 144
        assert res.rows[0]["E_gk_sim"] > res.rows[0]["E_cannon_sim"]
        assert res.rows[-1]["E_cannon_sim"] > res.rows[-1]["E_gk_sim"]
        assert res.crossover_sim is not None and 48 < res.crossover_sim < 144
        # model prediction reproduces the paper's n = 83
        assert res.crossover_model == pytest.approx(83, abs=3)

    def test_fig5_small(self):
        res = figures45.run_fig5(sizes=(88, 264, 352))
        assert res.crossover_sim is not None and 88 < res.crossover_sim < 352
        assert res.crossover_model == pytest.approx(295, abs=12)

    def test_verification_catches_corruption(self):
        # the driver verifies every product; a sanity check that it runs
        res = figures45.run_fig4(sizes=(16,))
        assert len(res.rows) == 1

    def test_format(self):
        res = figures45.run_fig4(sizes=(16, 96))
        text = figures45.format_text(res)
        assert "crossover" in text and "paper predicted: 83" in text


class TestSection6:
    def test_all_claims_agree(self):
        rows = section6.run()
        assert all(r["agrees"] for r in rows), [r for r in rows if not r["agrees"]]

    def test_format(self):
        assert "Section 6" in section6.format_text(section6.run())


class TestAllportExperiment:
    def test_allport_no_asymptotic_gain(self):
        rows = allport.run()
        # GK: all-port effective isoefficiency has the same order as one-port
        # (the ratio stays bounded instead of shrinking to zero)
        gk = [r["ratio_allport_over_one_port"] for r in rows if r["algorithm"] == "gk"]
        assert gk and min(gk[-3:]) > 1e-3
        assert max(gk) / min(gk) < 100
        # simple: the message-size bound makes all-port strictly worse at scale
        simple = [r for r in rows if r["algorithm"] == "simple"]
        ratios = [r["ratio_allport_over_one_port"] for r in simple]
        assert ratios == sorted(ratios)  # grows with p
        assert ratios[-1] > 1.0

    def test_format(self):
        assert "Section 7" in allport.format_text(allport.run())


class TestTechnologyExperiment:
    def test_growth_claims(self):
        res = technology.run()
        growth = {r["claim"]: r for r in res["growth"]}
        c31 = growth["Cannon, 10x processors -> problem x31.6"]
        assert c31["measured"] == pytest.approx(31.6, rel=0.01)
        c1000 = growth["Cannon, 10x faster CPUs (small ts) -> problem x~1000"]
        assert 900 < c1000["measured"] < 1001

    def test_fleet_winner_flips(self):
        res = technology.run()
        winners = {r["winner"] for r in res["fleets"]}
        assert winners == {"many-slow", "few-fast"}

    def test_format(self):
        assert "Section 8" in technology.format_text(technology.run())


class TestValidationExperiment:
    def test_all_numerically_correct(self):
        rows = validation.run()
        assert all(r["numerically_correct"] for r in rows)

    def test_exact_rows_have_zero_error(self):
        rows = validation.run()
        for r in rows:
            if "(exact)" in r["algorithm"]:
                assert r["rel_err"] < 1e-12

    def test_model_rows_within_band(self):
        rows = validation.run()
        for r in rows:
            if "(exact)" not in r["algorithm"]:
                assert r["rel_err"] < 0.45


class TestCLI:
    def test_main_runs_table1(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        out = tmp_path / "t.txt"
        assert main(["table1", "--out", str(out)]) == 0
        assert "Table 1" in out.read_text()

    def test_main_fig4_fast(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig4", "--fast"]) == 0
        assert "crossover" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_refine_matches_dense_figure(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig2", "--fast"]) == 0
        dense_out = capsys.readouterr().out
        assert main(["fig2", "--fast", "--refine", "--no-disk-cache"]) == 0
        refined_out = capsys.readouterr().out
        assert refined_out == dense_out

    def test_cache_stats_reports_warm_hit(self, capsys, tmp_path):
        import json

        from repro.experiments.__main__ import main

        cache_dir = str(tmp_path / "shards")
        assert main(["fig1", "--fast", "--cache-dir", cache_dir, "--cache-stats"]) == 0
        cold = capsys.readouterr().out
        assert "cache stats:" in cold
        # second process-equivalent run: clear the memory tier, keep the disk
        from repro.core.cache import result_cache

        result_cache().clear()
        assert main(["fig1", "--fast", "--cache-dir", cache_dir, "--cache-stats"]) == 0
        warm = capsys.readouterr().out
        stats = json.loads(warm.rsplit("cache stats:", 1)[1])
        assert stats["disk"]["hits"] > 0
        assert warm.rsplit("cache stats:", 1)[0] == cold.rsplit("cache stats:", 1)[0]

    def test_no_disk_cache_flag(self, capsys, tmp_path):
        import json

        from repro.experiments.__main__ import main

        assert main(["fig1", "--fast", "--no-disk-cache", "--cache-stats"]) == 0
        stats = json.loads(capsys.readouterr().out.rsplit("cache stats:", 1)[1])
        assert stats["disk"] is None
