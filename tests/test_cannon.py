"""Tests for Cannon's algorithm (Section 4.2)."""

import numpy as np
import pytest

from conftest import rand_pair
from repro.core.machine import MachineParams
from repro.algorithms.cannon import run_cannon
from repro.experiments.validation import cannon_exact_time
from repro.simulator.topology import FullyConnected, Mesh2D


MACHINE = MachineParams(ts=10.0, tw=2.0)


class TestCorrectness:
    @pytest.mark.parametrize("n,p", [(4, 4), (8, 16), (16, 16), (16, 64), (32, 64)])
    def test_product_exact(self, n, p):
        A, B = rand_pair(n, seed=n * 1000 + p)
        res = run_cannon(A, B, p, MACHINE)
        assert np.allclose(res.C, A @ B)

    def test_uneven_blocks(self):
        A, B = rand_pair(17, seed=7)
        res = run_cannon(A, B, 16, MACHINE)
        assert np.allclose(res.C, A @ B)

    def test_single_processor(self):
        A, B = rand_pair(5, seed=3)
        res = run_cannon(A, B, 1, MACHINE)
        assert np.allclose(res.C, A @ B)
        assert res.parallel_time == pytest.approx(125.0)

    def test_charged_alignment_same_product(self):
        A, B = rand_pair(12, seed=9)
        res = run_cannon(A, B, 16, MACHINE, align="charged")
        assert np.allclose(res.C, A @ B)

    def test_identity_times_matrix(self):
        n = 8
        A = np.eye(n)
        B = rand_pair(n, seed=1)[0]
        res = run_cannon(A, B, 16, MACHINE)
        assert np.allclose(res.C, B)

    def test_on_mesh_topology(self):
        A, B = rand_pair(12, seed=11)
        res = run_cannon(A, B, 9, MACHINE, topology=Mesh2D(3, 3))
        assert np.allclose(res.C, A @ B)

    def test_on_fully_connected_nonpow2_side(self):
        # p = 36 is a square but not a power of four: fine off-hypercube
        A, B = rand_pair(13, seed=13)
        res = run_cannon(A, B, 36, MACHINE, topology=FullyConnected(36))
        assert np.allclose(res.C, A @ B)


class TestValidation:
    def test_nonsquare_p_rejected(self):
        A, B = rand_pair(8, seed=0)
        with pytest.raises(ValueError):
            run_cannon(A, B, 8, MACHINE)

    def test_p_exceeding_n_squared_rejected(self):
        A, B = rand_pair(3, seed=0)
        with pytest.raises(ValueError):
            run_cannon(A, B, 16, MACHINE)

    def test_nonsquare_matrix_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            run_cannon(rng.standard_normal((4, 6)), rng.standard_normal((6, 4)), 4, MACHINE)

    def test_bad_align_mode(self):
        A, B = rand_pair(8, seed=0)
        with pytest.raises(ValueError):
            run_cannon(A, B, 4, MACHINE, align="maybe")

    def test_hypercube_needs_pow2_side(self):
        A, B = rand_pair(16, seed=0)
        with pytest.raises(ValueError):
            run_cannon(A, B, 36, MACHINE)  # default hypercube of size 36 impossible


class TestTiming:
    @pytest.mark.parametrize("n,p", [(16, 16), (32, 16), (32, 64), (24, 16)])
    def test_matches_exact_equation(self, n, p):
        # T_p = n^3/p + 2*(sqrt(p)-1)*(ts + tw*n^2/p): Eq. 3 with the exact
        # roll count; the simulator must land on it to machine precision.
        A, B = rand_pair(n, seed=5)
        res = run_cannon(A, B, p, MACHINE)
        assert res.parallel_time == pytest.approx(cannon_exact_time(n, p, MACHINE))

    def test_paper_equation_asymptotic_agreement(self):
        # against the paper's own Eq. 3 (sqrt(p) rolls) the error is O(1/sqrt(p))
        from repro.core.models import MODELS

        n, p = 64, 64
        A, B = rand_pair(n, seed=5)
        res = run_cannon(A, B, p, MACHINE)
        model = MODELS["cannon"].time(n, p, MACHINE)
        assert abs(res.parallel_time - model) / model < 2 / np.sqrt(p)

    def test_charged_alignment_costs_more(self):
        A, B = rand_pair(16, seed=5)
        t_pre = run_cannon(A, B, 16, MACHINE, align="pre").parallel_time
        t_charged = run_cannon(A, B, 16, MACHINE, align="charged").parallel_time
        assert t_charged > t_pre

    def test_efficiency_increases_with_n(self):
        p = 16
        effs = [run_cannon(*rand_pair(n, seed=1), p, MACHINE).efficiency for n in (8, 16, 32, 64)]
        assert effs == sorted(effs)
        assert 0 < effs[0] < effs[-1] <= 1.0

    def test_overhead_decomposition(self):
        A, B = rand_pair(16, seed=5)
        res = run_cannon(A, B, 16, MACHINE)
        # T_o = p*Tp - W must equal total comm + idle time across ranks
        assert res.total_overhead == pytest.approx(
            sum(s.comm_time for s in res.sim.stats)
        )


class TestStats:
    def test_message_counts(self):
        n, p = 16, 16
        A, B = rand_pair(n, seed=5)
        res = run_cannon(A, B, p, MACHINE)
        # (sqrt(p)-1) rolls of two blocks per rank
        side = 4
        assert res.sim.total_messages == p * 2 * (side - 1)
        assert res.sim.total_words == p * 2 * (side - 1) * (n * n // p)

    def test_compute_time_is_work(self):
        n, p = 16, 16
        A, B = rand_pair(n, seed=5)
        res = run_cannon(A, B, p, MACHINE)
        assert res.sim.total_compute_time == pytest.approx(n**3)
