"""End-to-end tests for the repro.serve HTTP/WebSocket application.

A real server runs on an ephemeral port; clients are hand-rolled on
asyncio streams (the repo has no HTTP client dependency, and speaking
the wire protocol directly is the point — these tests cover the
transport layer, not just ``dispatch``).
"""

import asyncio
import base64
import json
import struct

import pytest

from repro.serve import ReproServer, ServeConfig


async def _http(reader, writer, method, path, body=None, close=False):
    """One request over an open connection; returns (status, payload)."""
    data = b"" if body is None else json.dumps(body).encode()
    conn = "close" if close else "keep-alive"
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(data)}\r\nConnection: {conn}\r\n\r\n"
    )
    writer.write(head.encode() + data)
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode().partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    return status, json.loads(await reader.readexactly(length))


def _serve(test_coro, **config_kw):
    """Run *test_coro(server, host, port)* against a live server."""
    config_kw.setdefault("preload", False)

    async def go():
        server = ReproServer(ServeConfig(**config_kw))
        await server.start()
        try:
            return await test_coro(server, "127.0.0.1", server.port)
        finally:
            await server.stop()

    return asyncio.run(go())


class TestHttp:
    def test_healthz_and_stats(self):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            status, payload = await _http(reader, writer, "GET", "/healthz")
            assert status == 200 and payload["ok"]
            status, stats = await _http(reader, writer, "GET", "/stats")
            assert status == 200
            assert {"batcher", "serve_cache", "jobs", "predictions"} <= set(stats)
            writer.close()

        _serve(scenario)

    def test_concurrent_predicts_coalesce(self):
        async def scenario(server, host, port):
            async def one(i):
                reader, writer = await asyncio.open_connection(host, port)
                status, payload = await _http(
                    reader, writer, "POST", "/predict",
                    {"machine": "cm5", "n": 256.0 + i, "p": 64}, close=True,
                )
                writer.close()
                return status, payload

            results = await asyncio.gather(*(one(i) for i in range(40)))
            assert all(status == 200 for status, _ in results)
            assert all(r["predictions"][0]["algorithm"] for _, r in results)
            stats = server.batcher.stats()
            assert stats["batches"] >= 1
            assert stats["batched_points"] == 40
            # 40 concurrent sockets coalesced into far fewer scans
            assert stats["batches"] < 40

        _serve(scenario)

    def test_multi_point_and_machine_override(self):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            status, payload = await _http(
                reader, writer, "POST", "/predict",
                {
                    "machine": {"preset": "cm5", "tw": 9.0},
                    "points": [{"n": 128, "p": 16}, {"n": 2048, "p": 4096}],
                },
            )
            assert status == 200 and payload["count"] == 2
            assert payload["machine"]["tw"] == 9.0
            writer.close()

        _serve(scenario)

    def test_keep_alive_connection_reuse(self):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            for n in (64.0, 128.0, 256.0):
                status, _ = await _http(
                    reader, writer, "POST", "/predict",
                    {"machine": "ncube2-like", "n": n, "p": 16},
                )
                assert status == 200
            writer.close()
            assert server.connections == 1  # one socket served all three

        _serve(scenario)

    def test_error_statuses(self):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            cases = [
                ("POST", "/predict", {"machine": "nope", "n": 4, "p": 4}, 400),
                ("POST", "/predict", {"machine": "cm5", "n": -1, "p": 4}, 400),
                ("POST", "/predict", {"machine": {"bogus": 1.0}, "n": 4, "p": 4}, 400),
                ("GET", "/nope", None, 404),
                ("GET", "/jobs/job-999999", None, 404),
                ("POST", "/regions",
                 {"machine": "cm5", "log2_p_max": 99}, 413),
                ("POST", "/jobs",
                 {"machine": "cm5", "algorithm": "cannon", "n": 4096, "p": 4}, 400),
                ("POST", "/crossover", {"machine": "cm5", "a": "x", "b": "gk"}, 400),
            ]
            for method, path, body, want in cases:
                status, payload = await _http(reader, writer, method, path, body)
                assert status == want, (path, status, payload)
                assert "error" in payload
            writer.close()

        _serve(scenario)

    def test_malformed_json_body(self):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            raw = b"{not json"
            writer.write(
                (
                    f"POST /predict HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(raw)}\r\n\r\n"
                ).encode() + raw
            )
            await writer.drain()
            status = int((await reader.readline()).split()[1])
            assert status == 400
            writer.close()

        _serve(scenario)

    def test_regions_and_crossover(self):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            status, payload = await _http(
                reader, writer, "POST", "/regions",
                {"machine": "future-mimd", "log2_p_max": 16, "log2_n_max": 10},
            )
            assert status == 200
            assert len(payload["rows"]) == 11  # one row per log2(n)
            assert len(payload["rows"][0]) == 17  # one letter per log2(p)
            assert payload["fractions"]
            status, payload = await _http(
                reader, writer, "POST", "/crossover",
                {"machine": "cm5", "a": "cannon", "b": "gk",
                 "p_values": [16, 256, 4096]},
            )
            assert status == 200 and len(payload["curve"]) == 3
            writer.close()

        _serve(scenario)

    def test_job_lifecycle_and_cached_resubmit(self):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            body = {"machine": "cm5", "algorithm": "cannon", "n": 8, "p": 4, "seed": 1}
            status, payload = await _http(reader, writer, "POST", "/jobs", body)
            assert status == 202
            job_id = payload["job"]["id"]
            for _ in range(500):
                status, payload = await _http(reader, writer, "GET", f"/jobs/{job_id}")
                if payload["job"]["status"] in ("done", "error"):
                    break
                await asyncio.sleep(0.01)
            job = payload["job"]
            assert job["status"] == "done", job
            assert job["result"]["verified"] is True
            assert job["result"]["simulated_time"] > 0
            # identical params: answered from the result cache, instantly
            status, payload = await _http(reader, writer, "POST", "/jobs", body)
            assert status == 202
            assert payload["job"]["cached"] is True
            assert payload["job"]["status"] == "done"
            writer.close()

        _serve(scenario)


class TestWebSocket:
    @staticmethod
    async def _ws_scenario(server, host, port, request):
        reader, writer = await asyncio.open_connection(host, port)
        key = base64.b64encode(bytes(range(16))).decode()
        writer.write(
            (
                f"GET /ws/regions HTTP/1.1\r\nHost: t\r\nUpgrade: websocket\r\n"
                f"Connection: Upgrade\r\nSec-WebSocket-Key: {key}\r\n"
                f"Sec-WebSocket-Version: 13\r\n\r\n"
            ).encode()
        )
        await writer.drain()
        assert b"101" in await reader.readline()
        while (await reader.readline()) not in (b"\r\n", b"\n"):
            pass
        msg = json.dumps(request).encode()
        mask = b"\x01\x02\x03\x04"
        masked = bytes(c ^ mask[i % 4] for i, c in enumerate(msg))
        head = bytes([0x81]) + (
            bytes([0x80 | len(msg)]) if len(msg) < 126
            else bytes([0x80 | 126]) + struct.pack(">H", len(msg))
        )
        writer.write(head + mask + masked)
        await writer.drain()
        events = []
        while True:
            b1, b2 = await reader.readexactly(2)
            opcode = b1 & 0x0F
            length = b2 & 0x7F
            if length == 126:
                (length,) = struct.unpack(">H", await reader.readexactly(2))
            elif length == 127:
                (length,) = struct.unpack(">Q", await reader.readexactly(8))
            payload = await reader.readexactly(length) if length else b""
            if opcode == 0x8:  # close
                break
            events.append(json.loads(payload))
        writer.close()
        return events

    def test_streams_progress_then_result_then_cached(self):
        request = {"machine": "ncube2-like", "log2_p_max": 20, "log2_n_max": 12}

        async def scenario(server, host, port):
            first = await self._ws_scenario(server, host, port, request)
            assert any(e["event"] == "progress" for e in first)
            depths = [e["depth"] for e in first if e["event"] == "progress"]
            assert depths == sorted(depths)
            result = first[-1]
            assert result["event"] == "result" and result["cached"] is False
            assert len(result["rows"]) == 13
            # the second identical request must come straight from the
            # serve tier: a single cached result event, no progress
            second = await self._ws_scenario(server, host, port, request)
            assert [e["event"] for e in second] == ["result"]
            assert second[0]["cached"] is True
            assert second[0]["rows"] == result["rows"]

        _serve(scenario)

    def test_bad_request_yields_error_event(self):
        async def scenario(server, host, port):
            events = await self._ws_scenario(
                server, host, port, {"machine": "nope"}
            )
            assert events and events[0]["event"] == "error"

        _serve(scenario)


class TestDispatch:
    """Transport-independent routing (the load generator's path)."""

    def test_unknown_route(self):
        async def scenario(server, host, port):
            status, payload = await server.dispatch("PUT", "/predict", {})
            assert status == 404 and "error" in payload

        _serve(scenario)

    def test_protocol_error_maps_to_status(self):
        async def scenario(server, host, port):
            status, _ = await server.dispatch(
                "POST", "/predict", {"machine": "cm5", "points": []}
            )
            assert status == 400
            status, _ = await server.dispatch(
                "POST", "/predict",
                {"machine": "cm5",
                 "points": [{"n": 1, "p": 1}] * 5000},
            )
            assert status == 413

        _serve(scenario)

    def test_cli_serve_command_smoke(self, capsys):
        from repro.cli import main

        rc = main(["serve", "--port", "0", "--max-seconds", "0.2", "--no-preload"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro.serve listening on" in out
