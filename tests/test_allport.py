"""Tests for the all-port analysis (Section 7)."""

import math

import pytest

from repro.core.allport import ALLPORT_MODELS, allport_summary
from repro.core.isoefficiency import isoefficiency
from repro.core.machine import NCUBE2_LIKE, MachineParams
from repro.core.models import MODELS

M = MachineParams(ts=10.0, tw=2.0)


class TestSimpleAllPort:
    def test_comm_cheaper_than_one_port(self):
        ap, op = ALLPORT_MODELS["simple-allport"], MODELS["simple"]
        n, p = 1024, 4096
        assert ap.comm_time(n, p, M) < op.comm_time(n, p, M)

    def test_message_size_bound(self):
        ap = ALLPORT_MODELS["simple-allport"]
        p = 1024
        threshold = 0.5 * math.sqrt(p) * math.log2(p)
        assert not ap.message_size_feasible(threshold - 1, p)
        assert ap.message_size_feasible(threshold + 1, p)

    def test_effective_isoefficiency_not_better(self):
        # Section 7.1: the message-size bound W >= p^1.5 (log p)^3 / 8 grows
        # *faster* than the one-port O(p^1.5) isoefficiency - the required
        # problem-size ratio all-port/one-port rises with p and passes 1
        ap, op = ALLPORT_MODELS["simple-allport"], MODELS["simple"]
        ratios = []
        for k in (8, 14, 20, 26):
            p = 2.0**k
            w_ap = isoefficiency(ap, p, NCUBE2_LIKE, 0.5)
            w_op = isoefficiency(op, p, NCUBE2_LIKE, 0.5)
            ratios.append(w_ap / w_op)
        assert ratios == sorted(ratios)
        assert ratios[-1] > 1.0

    def test_bound_formula(self):
        ap = ALLPORT_MODELS["simple-allport"]
        p = 2.0**10
        assert ap.concurrency_isoefficiency(p, M) == pytest.approx(p**1.5 * 1000 / 8)


class TestGKAllPort:
    def test_comm_cheaper_for_large_messages(self):
        ap, op = ALLPORT_MODELS["gk-allport"], MODELS["gk"]
        n, p = 4096, 512
        assert ap.comm_time(n, p, M) < op.comm_time(n, p, M)

    def test_effective_isoefficiency_matches_one_port(self):
        # Section 7.2: the message bound gives O(p (log p)^3) - exactly the
        # naive GK isoefficiency, so all-port does not help asymptotically
        ap = ALLPORT_MODELS["gk-allport"]
        ratios = []
        for k in (10, 16, 22, 28):
            p = 2.0**k
            bound = ap.concurrency_isoefficiency(p, M)
            one_port = isoefficiency(MODELS["gk"], p, NCUBE2_LIKE, 0.5)
            ratios.append(one_port / bound)
        # same asymptotic order: the ratio stays within a bounded band
        assert max(ratios) / min(ratios) < 50


class TestSummary:
    def test_no_algorithm_improves(self):
        rows = allport_summary()
        assert len(rows) == 3
        assert all(r["improves_scalability"] == "no" for r in rows)


class TestSimulatorAllPortFlag:
    def test_gk_allport_constant_factor_only(self):
        # the simulator's all-port flag exists for ablations; for the
        # point-to-point algorithms it changes nothing (Section 7: nearest
        # neighbor communication gains only a constant factor)
        import numpy as np

        from conftest import rand_pair
        from repro.algorithms.cannon import run_cannon

        A, B = rand_pair(16, seed=1)
        t1 = run_cannon(A, B, 16, M).parallel_time
        t2 = run_cannon(A, B, 16, M.with_(all_port=True)).parallel_time
        assert t1 == t2  # cannon never uses SendAll
        assert np.allclose(run_cannon(A, B, 16, M.with_(all_port=True)).C, A @ B)
