"""Unit and property tests for repro.blockops.partition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockops.partition import (
    BlockSpec,
    block_shape,
    block_slices,
    gather_blocks,
    int_cbrt,
    int_sqrt,
    is_perfect_square,
    is_power_of,
    scatter_blocks,
)


class TestHelpers:
    def test_is_perfect_square_true(self):
        for x in (0, 1, 4, 9, 16, 144, 10**8):
            assert is_perfect_square(x)

    def test_is_perfect_square_false(self):
        for x in (2, 3, 5, 8, 15, 10**8 + 1, -4):
            assert not is_perfect_square(x)

    def test_int_sqrt(self):
        assert int_sqrt(49) == 7
        assert int_sqrt(1) == 1

    def test_int_sqrt_raises(self):
        with pytest.raises(ValueError):
            int_sqrt(50)

    def test_int_cbrt(self):
        assert int_cbrt(27) == 3
        assert int_cbrt(1) == 1
        assert int_cbrt(512) == 8

    def test_int_cbrt_raises(self):
        with pytest.raises(ValueError):
            int_cbrt(26)
        with pytest.raises(ValueError):
            int_cbrt(-8)

    def test_is_power_of(self):
        assert is_power_of(8, 2)
        assert is_power_of(1, 2)
        assert is_power_of(64, 8)
        assert not is_power_of(12, 2)
        assert not is_power_of(0, 2)
        assert not is_power_of(8, 1)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_isqrt_roundtrip(self, x):
        assert is_perfect_square(x * x)
        assert int_sqrt(x * x) == x

    @given(st.integers(min_value=0, max_value=2000))
    def test_cbrt_roundtrip(self, x):
        assert int_cbrt(x**3) == x


class TestBlockSpecBasics:
    def test_validation_positive(self):
        with pytest.raises(ValueError):
            BlockSpec(0, 4, 1, 1)
        with pytest.raises(ValueError):
            BlockSpec(4, 4, 0, 2)

    def test_validation_grid_fits(self):
        with pytest.raises(ValueError):
            BlockSpec(3, 3, 4, 1)

    def test_uniform_flag(self):
        assert BlockSpec(8, 8, 4, 4).uniform
        assert not BlockSpec(9, 8, 4, 4).uniform

    def test_nblocks(self):
        assert BlockSpec(8, 8, 2, 4).nblocks == 8

    def test_even_bounds(self):
        spec = BlockSpec(8, 8, 4, 4)
        assert spec.row_bounds(0) == (0, 2)
        assert spec.row_bounds(3) == (6, 8)
        assert spec.block_shape(1, 2) == (2, 2)

    def test_uneven_bounds_leading_blocks_bigger(self):
        spec = BlockSpec(10, 10, 4, 4)  # 10 = 3+3+2+2
        sizes = [spec.row_bounds(b)[1] - spec.row_bounds(b)[0] for b in range(4)]
        assert sizes == [3, 3, 2, 2]
        assert sum(sizes) == 10

    def test_bounds_cover_matrix(self):
        spec = BlockSpec(17, 13, 5, 3)
        rows = [spec.row_bounds(b) for b in range(5)]
        assert rows[0][0] == 0 and rows[-1][1] == 17
        for (a0, a1), (b0, b1) in zip(rows, rows[1:]):
            assert a1 == b0

    def test_block_index_errors(self):
        spec = BlockSpec(8, 8, 2, 2)
        with pytest.raises(IndexError):
            spec.row_bounds(2)
        with pytest.raises(IndexError):
            spec.block_slice(0, 5)


class TestOwnerMaps:
    def test_owner_of_even(self):
        spec = BlockSpec(8, 8, 4, 4)
        assert spec.owner_of(0, 0) == (0, 0)
        assert spec.owner_of(7, 7) == (3, 3)
        assert spec.owner_of(2, 5) == (1, 2)

    def test_owner_out_of_range(self):
        spec = BlockSpec(8, 8, 4, 4)
        with pytest.raises(IndexError):
            spec.owner_of(8, 0)

    def test_local_index(self):
        spec = BlockSpec(8, 8, 4, 4)
        assert spec.local_index(3, 5) == (1, 1)

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.data(),
    )
    def test_owner_consistent_with_bounds(self, nr, nc, gr, gc, data):
        gr, gc = min(gr, nr), min(gc, nc)
        spec = BlockSpec(nr, nc, gr, gc)
        i = data.draw(st.integers(min_value=0, max_value=nr - 1))
        j = data.draw(st.integers(min_value=0, max_value=nc - 1))
        bi, bj = spec.owner_of(i, j)
        r0, r1 = spec.row_bounds(bi)
        c0, c1 = spec.col_bounds(bj)
        assert r0 <= i < r1 and c0 <= j < c1
        li, lj = spec.local_index(i, j)
        assert (li, lj) == (i - r0, j - c0)


class TestScatterGather:
    def test_scatter_shapes(self, rng):
        m = rng.standard_normal((10, 12))
        blocks = scatter_blocks(m, 3, 4)
        assert len(blocks) == 3 and len(blocks[0]) == 4
        assert blocks[0][0].shape == (4, 3)

    def test_roundtrip_even(self, rng):
        m = rng.standard_normal((8, 8))
        assert np.array_equal(gather_blocks(scatter_blocks(m, 4, 2)), m)

    def test_roundtrip_uneven(self, rng):
        m = rng.standard_normal((11, 7))
        assert np.array_equal(gather_blocks(scatter_blocks(m, 3, 4)), m)

    def test_scatter_shape_mismatch(self, rng):
        spec = BlockSpec(8, 8, 2, 2)
        with pytest.raises(ValueError):
            spec.scatter(rng.standard_normal((8, 9)))

    def test_gather_wrong_grid(self, rng):
        spec = BlockSpec(8, 8, 2, 2)
        blocks = spec.scatter(rng.standard_normal((8, 8)))
        with pytest.raises(ValueError):
            spec.gather(blocks[:1])

    def test_gather_wrong_block_shape(self, rng):
        spec = BlockSpec(8, 8, 2, 2)
        blocks = spec.scatter(rng.standard_normal((8, 8)))
        blocks[0][0] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            spec.gather(blocks)

    def test_blocks_are_copies(self, rng):
        m = rng.standard_normal((8, 8))
        blocks = scatter_blocks(m, 2, 2)
        blocks[0][0][0, 0] = 1e9
        assert m[0, 0] != 1e9

    @settings(max_examples=30)
    @given(
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    )
    def test_roundtrip_property(self, nr, nc, gr, gc):
        gr, gc = min(gr, nr), min(gc, nc)
        m = np.arange(nr * nc, dtype=float).reshape(nr, nc)
        spec = BlockSpec(nr, nc, gr, gc)
        assert np.array_equal(spec.gather(spec.scatter(m)), m)


class TestOneDimensional:
    def test_block_slices_cover(self):
        slices = block_slices(10, 3)
        assert len(slices) == 3
        covered = np.concatenate([np.arange(10)[s] for s in slices])
        assert np.array_equal(covered, np.arange(10))

    def test_block_shape_1d(self):
        assert block_shape(10, 3, 0) == 4
        assert block_shape(10, 3, 2) == 3
