"""Property-based fuzzing of the discrete-event engine.

Generates random-but-matched communication schedules (every send has a
corresponding receive) and checks the engine's global invariants:
no deadlock, clock monotonicity, exact payload delivery, conservation
of messages/words, and determinism.  The same schedules also drive the
scheduler-equivalence property: the event-driven ``ready`` scheduler
and the event-heap ``heap`` scheduler must produce bit-identical
clocks, stats, and return values to the reference ``rescan`` scheduler
on every program — including the configurations ``ready`` never
covered (tracing on, link contention, and active ``FaultPlan``s, which
silently fall back to rescan unless ``heap`` is selected).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine import MachineParams
from repro.simulator.engine import Engine
from repro.simulator.faults import FaultPlan
from repro.simulator.request import Barrier, Compute, Recv, Send, SendAll
from repro.simulator.topology import FullyConnected, Hypercube


def _build_schedule(rng: np.random.Generator, p: int, nops: int, barriers: bool = False):
    """A random schedule of matched sends/recvs plus computes.

    Returns per-rank op lists.  Messages are generated in a global
    causal order (sender op appended before receiver op), which a
    round-robin engine must be able to execute without deadlock as long
    as receives on each rank happen in the order generated.  With
    *barriers*, global barriers are occasionally appended to every rank
    at once — matched pairs are always complete before a barrier, so
    the schedule stays deadlock-free.
    """
    ops: list[list[tuple]] = [[] for _ in range(p)]
    msg_id = 0
    for _ in range(nops):
        kind = rng.choice(["send", "compute"])
        if kind == "compute":
            r = int(rng.integers(p))
            ops[r].append(("compute", float(rng.integers(1, 50))))
        else:
            src = int(rng.integers(p))
            dst = int(rng.integers(p - 1))
            if dst >= src:
                dst += 1
            nwords = int(rng.integers(0, 40))
            ops[src].append(("send", dst, msg_id, nwords))
            ops[dst].append(("recv", src, msg_id))
            msg_id += 1
        if barriers and rng.integers(8) == 0:
            for rank_ops in ops:
                rank_ops.append(("barrier",))
    return ops


def _factory_for(ops):
    def make(rank_ops):
        def factory(info):
            def body():
                got = []
                for op in rank_ops:
                    if op[0] == "compute":
                        yield Compute(op[1])
                    elif op[0] == "send":
                        _, dst, mid, nwords = op
                        yield Send(dst=dst, data=("msg", mid), nwords=nwords, tag=mid)
                    elif op[0] == "barrier":
                        yield Barrier()
                    else:
                        _, src, mid = op
                        data = yield Recv(src=src, tag=mid)
                        got.append((data[1], mid))
                return got

            return body()

        return factory

    return [make(rank_ops) for rank_ops in ops]


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    p=st.sampled_from([2, 3, 4, 8]),
    nops=st.integers(min_value=1, max_value=60),
    ts=st.floats(min_value=0.0, max_value=100.0),
)
def test_random_matched_schedules_complete(seed, p, nops, ts):
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, p, nops)
    machine = MachineParams(ts=ts, tw=1.0)
    res = Engine(FullyConnected(p), machine).run(_factory_for(ops))
    # every receive got the payload of its own message id
    for got in res.returns:
        assert all(received_id == mid for received_id, mid in got)
    # conservation: messages/words sent match schedule
    sends = [op for rank_ops in ops for op in rank_ops if op[0] == "send"]
    assert res.total_messages == len(sends)
    assert res.total_words == sum(op[3] for op in sends)
    # clocks non-negative, Tp is the max finish time
    assert all(s.finish_time >= 0 for s in res.stats)
    assert res.parallel_time == max(s.finish_time for s in res.stats)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    nops=st.integers(min_value=5, max_value=40),
)
def test_fuzz_determinism(seed, nops):
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, 4, nops)
    machine = MachineParams(ts=3.0, tw=2.0)
    r1 = Engine(Hypercube(2), machine).run(_factory_for(ops))
    r2 = Engine(Hypercube(2), machine).run(_factory_for(ops))
    assert r1.parallel_time == r2.parallel_time
    assert [s.finish_time for s in r1.stats] == [s.finish_time for s in r2.stats]


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    p=st.sampled_from([2, 4, 8]),
    nops=st.integers(min_value=1, max_value=60),
    ts=st.floats(min_value=0.0, max_value=100.0),
    routing=st.sampled_from(["sf", "ct"]),
    barriers=st.booleans(),
    topo=st.sampled_from(["full", "hypercube"]),
    scheduler=st.sampled_from(["ready", "heap"]),
)
def test_schedulers_bit_identical(seed, p, nops, ts, routing, barriers, topo, scheduler):
    """The fast schedulers are clock-identical to the seed rescan scheduler.

    Not approximately equal — bit-identical: all paths must perform the
    same float operations in the same order per rank, so parallel_time,
    every per-rank stats field, and the programs' return values match
    exactly on arbitrary matched schedules with and without barriers.
    """
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, p, nops, barriers=barriers)
    machine = MachineParams(ts=ts, tw=1.7, th=0.3, routing=routing)
    make_topo = (lambda: FullyConnected(p)) if topo == "full" else (
        lambda: Hypercube(int(np.log2(p)))
    )
    r_fast = Engine(make_topo(), machine, scheduler=scheduler).run(_factory_for(ops))
    r_rescan = Engine(make_topo(), machine, scheduler="rescan").run(_factory_for(ops))
    assert r_fast.parallel_time == r_rescan.parallel_time
    assert r_fast.stats == r_rescan.stats
    assert r_fast.returns == r_rescan.returns
    assert r_fast.total_messages == r_rescan.total_messages
    assert r_fast.total_words == r_rescan.total_words


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    scheduler=st.sampled_from(["ready", "heap"]),
)
def test_schedulers_identical_traces(seed, scheduler):
    """With tracing on, all schedulers emit the same per-rank events.

    Tracing forces ``ready`` onto the rescan path, but ``heap`` keeps
    its own loop — so this pins the heap's traced runs (timings, kinds,
    labels, tags) against the reference event for event.
    """
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, 4, 30, barriers=True)
    machine = MachineParams(ts=3.0, tw=2.0)
    r1 = Engine(FullyConnected(4), machine, trace=True, scheduler=scheduler).run(_factory_for(ops))
    r2 = Engine(FullyConnected(4), machine, trace=True, scheduler="rescan").run(_factory_for(ops))
    for rank in range(4):
        e1, e2 = r1.trace.for_rank(rank), r2.trace.for_rank(rank)
        assert [(e.start, e.end, e.kind, e.detail, e.tag) for e in e1] == [
            (e.start, e.end, e.kind, e.detail, e.tag) for e in e2
        ]


def _fault_plan(shape: str, seed: int) -> FaultPlan:
    """One of the fault-model shapes PR 4 introduced, deterministically keyed."""
    if shape == "crash":
        return FaultPlan(
            seed=seed, horizon=400.0, crash_times=((1, 37.0),),
            checkpoint_interval=50.0, checkpoint_cost=2.0, recovery_cost=5.0,
        )
    if shape == "straggler":
        return FaultPlan(seed=seed, horizon=400.0, straggler_rate=0.4, straggler_factor=2.5)
    if shape == "drop":
        return FaultPlan(seed=seed, horizon=400.0, drop_rate=0.25, timeout=9.0)
    return FaultPlan(
        seed=seed, horizon=400.0, degrade_rate=0.3, degrade_factor=1.8,
        drop_rate=0.15, timeout=6.0, crash_times=((0, 61.0),),
        checkpoint_interval=40.0, checkpoint_cost=1.0, recovery_cost=3.0,
    )


def _fault_fingerprint(res):
    return (
        res.parallel_time, res.stats, res.returns,
        res.total_messages, res.total_words,
        res.retransmits, res.faults_injected,
        res.checkpoint_time, res.recovery_time,
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    p=st.sampled_from([2, 4, 8]),
    nops=st.integers(min_value=5, max_value=50),
    shape=st.sampled_from(["crash", "straggler", "drop", "combined"]),
    traced=st.booleans(),
)
def test_heap_matches_rescan_under_faults(seed, p, nops, shape, traced):
    """Fault-active runs: heap is bit-identical to rescan, fault field by field.

    ``ready`` silently falls back to rescan whenever a FaultPlan is set,
    so these configurations are exactly the ones the heap scheduler
    newly covers — the recovery timeline (crashes, stragglers,
    drops/retransmits, checkpoints) must come out identical because the
    heap's exact regime charges every request through the same reference
    helpers, just in heap order.
    """
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, p, nops, barriers=True)
    machine = MachineParams(ts=4.0, tw=1.5, th=0.25)
    plan = _fault_plan(shape, seed % 1000)
    r_heap = Engine(
        FullyConnected(p), machine, fault_plan=plan, trace=traced, scheduler="heap"
    ).run(_factory_for(ops))
    r_rescan = Engine(
        FullyConnected(p), machine, fault_plan=plan, trace=traced, scheduler="rescan"
    ).run(_factory_for(ops))
    assert _fault_fingerprint(r_heap) == _fault_fingerprint(r_rescan)
    if traced:
        for rank in range(p):
            e1 = r_heap.trace.for_rank(rank)
            e2 = r_rescan.trace.for_rank(rank)
            assert [(e.start, e.end, e.kind, e.detail) for e in e1] == [
                (e.start, e.end, e.kind, e.detail) for e in e2
            ]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    p=st.sampled_from([2, 4, 8]),
    nops=st.integers(min_value=5, max_value=50),
)
def test_heap_matches_rescan_under_contention(seed, p, nops):
    """Link contention on a fully connected machine: heap == rescan.

    Single-hop routes make contention confluent (each directed link is
    fed by one sender in program order), so the heap's event order must
    reserve the same link windows the rescan reference does.
    """
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, p, nops)
    machine = MachineParams(ts=4.0, tw=1.5)
    r_heap = Engine(
        FullyConnected(p), machine, link_contention=True, scheduler="heap"
    ).run(_factory_for(ops))
    r_rescan = Engine(
        FullyConnected(p), machine, link_contention=True, scheduler="rescan"
    ).run(_factory_for(ops))
    assert r_heap.parallel_time == r_rescan.parallel_time
    assert r_heap.stats == r_rescan.stats
    assert r_heap.returns == r_rescan.returns


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    p=st.sampled_from([4, 8, 32]),
    k=st.integers(min_value=1, max_value=4),
    all_port=st.booleans(),
    routing=st.sampled_from(["sf", "ct"]),
)
def test_sendall_exchange_bit_identical(seed, p, k, all_port, routing):
    """Neighbor exchanges through SendAll: heap == ready == rescan.

    ``p = 32`` with ``k = 4`` destinations pushes the heap scheduler's
    batched SendAll charging onto its vectorized path; the smaller
    configurations stay on the scalar path — both must match the
    reference under one-port and all-port models.
    """
    rng = np.random.default_rng(seed)
    k = min(k, p - 1)  # SendAll destinations must be distinct
    offsets = [int(d) + 1 for d in rng.choice(p - 1, size=k, replace=False)]
    nwords = [int(w) for w in rng.integers(0, 30, size=k)]

    def prog(info):
        dsts = [(info.rank + d) % p for d in offsets]
        yield Compute(float((info.rank * 13) % 7))
        yield SendAll([
            Send(dst=dst, data=(info.rank, i), nwords=nwords[i], tag=info.rank * 10 + i)
            for i, dst in enumerate(dsts)
        ])
        got = []
        for i, d in enumerate(offsets):
            src = (info.rank - d) % p
            got.append((yield Recv(src=src, tag=src * 10 + i)))
        return got

    machine = MachineParams(ts=5.0, tw=1.3, th=0.2, routing=routing, all_port=all_port)
    results = {
        s: Engine(FullyConnected(p), machine, scheduler=s).run(
            [prog for _ in range(p)]
        )
        for s in ("heap", "ready", "rescan")
    }
    ref = results["rescan"]
    for s in ("heap", "ready"):
        assert results[s].parallel_time == ref.parallel_time
        assert results[s].stats == ref.stats
        assert results[s].returns == ref.returns


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_trace_times_monotone_per_rank(seed):
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, 4, 30)
    machine = MachineParams(ts=3.0, tw=2.0)
    res = Engine(FullyConnected(4), machine, trace=True).run(_factory_for(ops))
    for rank in range(4):
        events = res.trace.for_rank(rank)
        for a, b in zip(events, events[1:]):
            assert a.end <= b.start + 1e-9
        for e in events:
            assert e.start <= e.end
