"""Property-based fuzzing of the discrete-event engine.

Generates random-but-matched communication schedules (every send has a
corresponding receive) and checks the engine's global invariants:
no deadlock, clock monotonicity, exact payload delivery, conservation
of messages/words, and determinism.  The same schedules also drive the
scheduler-equivalence property: the event-driven ``ready`` scheduler
must produce bit-identical clocks, stats, and return values to the
reference ``rescan`` scheduler on every program.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine import MachineParams
from repro.simulator.engine import Engine
from repro.simulator.request import Barrier, Compute, Recv, Send
from repro.simulator.topology import FullyConnected, Hypercube


def _build_schedule(rng: np.random.Generator, p: int, nops: int, barriers: bool = False):
    """A random schedule of matched sends/recvs plus computes.

    Returns per-rank op lists.  Messages are generated in a global
    causal order (sender op appended before receiver op), which a
    round-robin engine must be able to execute without deadlock as long
    as receives on each rank happen in the order generated.  With
    *barriers*, global barriers are occasionally appended to every rank
    at once — matched pairs are always complete before a barrier, so
    the schedule stays deadlock-free.
    """
    ops: list[list[tuple]] = [[] for _ in range(p)]
    msg_id = 0
    for _ in range(nops):
        kind = rng.choice(["send", "compute"])
        if kind == "compute":
            r = int(rng.integers(p))
            ops[r].append(("compute", float(rng.integers(1, 50))))
        else:
            src = int(rng.integers(p))
            dst = int(rng.integers(p - 1))
            if dst >= src:
                dst += 1
            nwords = int(rng.integers(0, 40))
            ops[src].append(("send", dst, msg_id, nwords))
            ops[dst].append(("recv", src, msg_id))
            msg_id += 1
        if barriers and rng.integers(8) == 0:
            for rank_ops in ops:
                rank_ops.append(("barrier",))
    return ops


def _factory_for(ops):
    def make(rank_ops):
        def factory(info):
            def body():
                got = []
                for op in rank_ops:
                    if op[0] == "compute":
                        yield Compute(op[1])
                    elif op[0] == "send":
                        _, dst, mid, nwords = op
                        yield Send(dst=dst, data=("msg", mid), nwords=nwords, tag=mid)
                    elif op[0] == "barrier":
                        yield Barrier()
                    else:
                        _, src, mid = op
                        data = yield Recv(src=src, tag=mid)
                        got.append((data[1], mid))
                return got

            return body()

        return factory

    return [make(rank_ops) for rank_ops in ops]


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    p=st.sampled_from([2, 3, 4, 8]),
    nops=st.integers(min_value=1, max_value=60),
    ts=st.floats(min_value=0.0, max_value=100.0),
)
def test_random_matched_schedules_complete(seed, p, nops, ts):
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, p, nops)
    machine = MachineParams(ts=ts, tw=1.0)
    res = Engine(FullyConnected(p), machine).run(_factory_for(ops))
    # every receive got the payload of its own message id
    for got in res.returns:
        assert all(received_id == mid for received_id, mid in got)
    # conservation: messages/words sent match schedule
    sends = [op for rank_ops in ops for op in rank_ops if op[0] == "send"]
    assert res.total_messages == len(sends)
    assert res.total_words == sum(op[3] for op in sends)
    # clocks non-negative, Tp is the max finish time
    assert all(s.finish_time >= 0 for s in res.stats)
    assert res.parallel_time == max(s.finish_time for s in res.stats)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    nops=st.integers(min_value=5, max_value=40),
)
def test_fuzz_determinism(seed, nops):
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, 4, nops)
    machine = MachineParams(ts=3.0, tw=2.0)
    r1 = Engine(Hypercube(2), machine).run(_factory_for(ops))
    r2 = Engine(Hypercube(2), machine).run(_factory_for(ops))
    assert r1.parallel_time == r2.parallel_time
    assert [s.finish_time for s in r1.stats] == [s.finish_time for s in r2.stats]


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    p=st.sampled_from([2, 4, 8]),
    nops=st.integers(min_value=1, max_value=60),
    ts=st.floats(min_value=0.0, max_value=100.0),
    routing=st.sampled_from(["sf", "ct"]),
    barriers=st.booleans(),
    topo=st.sampled_from(["full", "hypercube"]),
)
def test_schedulers_bit_identical(seed, p, nops, ts, routing, barriers, topo):
    """The ready scheduler is clock-identical to the seed rescan scheduler.

    Not approximately equal — bit-identical: both paths must perform the
    same float operations in the same order per rank, so parallel_time,
    every per-rank stats field, and the programs' return values match
    exactly on arbitrary matched schedules with and without barriers.
    """
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, p, nops, barriers=barriers)
    machine = MachineParams(ts=ts, tw=1.7, th=0.3, routing=routing)
    make_topo = (lambda: FullyConnected(p)) if topo == "full" else (
        lambda: Hypercube(int(np.log2(p)))
    )
    r_ready = Engine(make_topo(), machine, scheduler="ready").run(_factory_for(ops))
    r_rescan = Engine(make_topo(), machine, scheduler="rescan").run(_factory_for(ops))
    assert r_ready.parallel_time == r_rescan.parallel_time
    assert r_ready.stats == r_rescan.stats
    assert r_ready.returns == r_rescan.returns
    assert r_ready.total_messages == r_rescan.total_messages
    assert r_ready.total_words == r_rescan.total_words


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_schedulers_identical_traces(seed):
    """With tracing on, both schedulers emit the same per-rank event timings."""
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, 4, 30, barriers=True)
    machine = MachineParams(ts=3.0, tw=2.0)
    r1 = Engine(FullyConnected(4), machine, trace=True, scheduler="ready").run(_factory_for(ops))
    r2 = Engine(FullyConnected(4), machine, trace=True, scheduler="rescan").run(_factory_for(ops))
    for rank in range(4):
        e1, e2 = r1.trace.for_rank(rank), r2.trace.for_rank(rank)
        assert [(e.start, e.end, e.kind) for e in e1] == [(e.start, e.end, e.kind) for e in e2]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_trace_times_monotone_per_rank(seed):
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, 4, 30)
    machine = MachineParams(ts=3.0, tw=2.0)
    res = Engine(FullyConnected(4), machine, trace=True).run(_factory_for(ops))
    for rank in range(4):
        events = res.trace.for_rank(rank)
        for a, b in zip(events, events[1:]):
            assert a.end <= b.start + 1e-9
        for e in events:
            assert e.start <= e.end
