"""Property-based fuzzing of the discrete-event engine.

Generates random-but-matched communication schedules (every send has a
corresponding receive) and checks the engine's global invariants:
no deadlock, clock monotonicity, exact payload delivery, conservation
of messages/words, and determinism.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine import MachineParams
from repro.simulator.engine import Engine
from repro.simulator.request import Compute, Recv, Send
from repro.simulator.topology import FullyConnected, Hypercube


def _build_schedule(rng: np.random.Generator, p: int, nops: int):
    """A random schedule of matched sends/recvs plus computes.

    Returns per-rank op lists.  Messages are generated in a global
    causal order (sender op appended before receiver op), which a
    round-robin engine must be able to execute without deadlock as long
    as receives on each rank happen in the order generated.
    """
    ops: list[list[tuple]] = [[] for _ in range(p)]
    msg_id = 0
    for _ in range(nops):
        kind = rng.choice(["send", "compute"])
        if kind == "compute":
            r = int(rng.integers(p))
            ops[r].append(("compute", float(rng.integers(1, 50))))
        else:
            src = int(rng.integers(p))
            dst = int(rng.integers(p - 1))
            if dst >= src:
                dst += 1
            nwords = int(rng.integers(0, 40))
            ops[src].append(("send", dst, msg_id, nwords))
            ops[dst].append(("recv", src, msg_id))
            msg_id += 1
    return ops


def _factory_for(ops):
    def make(rank_ops):
        def factory(info):
            def body():
                got = []
                for op in rank_ops:
                    if op[0] == "compute":
                        yield Compute(op[1])
                    elif op[0] == "send":
                        _, dst, mid, nwords = op
                        yield Send(dst=dst, data=("msg", mid), nwords=nwords, tag=mid)
                    else:
                        _, src, mid = op
                        data = yield Recv(src=src, tag=mid)
                        got.append((data[1], mid))
                return got

            return body()

        return factory

    return [make(rank_ops) for rank_ops in ops]


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    p=st.sampled_from([2, 3, 4, 8]),
    nops=st.integers(min_value=1, max_value=60),
    ts=st.floats(min_value=0.0, max_value=100.0),
)
def test_random_matched_schedules_complete(seed, p, nops, ts):
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, p, nops)
    machine = MachineParams(ts=ts, tw=1.0)
    res = Engine(FullyConnected(p), machine).run(_factory_for(ops))
    # every receive got the payload of its own message id
    for got in res.returns:
        assert all(received_id == mid for received_id, mid in got)
    # conservation: messages/words sent match schedule
    sends = [op for rank_ops in ops for op in rank_ops if op[0] == "send"]
    assert res.total_messages == len(sends)
    assert res.total_words == sum(op[3] for op in sends)
    # clocks non-negative, Tp is the max finish time
    assert all(s.finish_time >= 0 for s in res.stats)
    assert res.parallel_time == max(s.finish_time for s in res.stats)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    nops=st.integers(min_value=5, max_value=40),
)
def test_fuzz_determinism(seed, nops):
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, 4, nops)
    machine = MachineParams(ts=3.0, tw=2.0)
    r1 = Engine(Hypercube(2), machine).run(_factory_for(ops))
    r2 = Engine(Hypercube(2), machine).run(_factory_for(ops))
    assert r1.parallel_time == r2.parallel_time
    assert [s.finish_time for s in r1.stats] == [s.finish_time for s in r2.stats]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_trace_times_monotone_per_rank(seed):
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, 4, 30)
    machine = MachineParams(ts=3.0, tw=2.0)
    res = Engine(FullyConnected(4), machine, trace=True).run(_factory_for(ops))
    for rank in range(4):
        events = res.trace.for_rank(rank)
        for a, b in zip(events, events[1:]):
            assert a.end <= b.start + 1e-9
        for e in events:
            assert e.start <= e.end
