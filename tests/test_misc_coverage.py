"""Miscellaneous coverage: report formatting edges, trace helpers,
model hand-points not covered elsewhere, CLI overrides."""

import math

import numpy as np
import pytest

from repro.core.machine import MachineParams
from repro.core.models import MODELS
from repro.experiments.report import _fmt, format_kv, format_table
from repro.simulator.trace import Trace, TraceEvent

M = MachineParams(ts=10.0, tw=2.0)


class TestReportFormatting:
    def test_fmt_special_floats(self):
        assert _fmt(float("nan")) == "nan"
        assert _fmt(float("inf")) == "inf"
        assert _fmt(float("-inf")) == "-inf"
        assert _fmt(0.0) == "0"

    def test_fmt_magnitudes(self):
        assert _fmt(1.23456789e7) == "1.235e+07"
        assert _fmt(0.00012345) == "0.0001234" or "e" in _fmt(0.00012345)
        assert _fmt(3.5) == "3.5"
        assert _fmt(True) == "True"

    def test_table_missing_column(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "b" in text

    def test_kv_empty(self):
        assert format_kv("T", {}).startswith("T")


class TestTraceHelpers:
    def test_for_rank_and_by_kind(self):
        tr = Trace(enabled=True)
        tr.record(TraceEvent(0, 0, 1, "compute"))
        tr.record(TraceEvent(1, 0, 2, "send"))
        tr.record(TraceEvent(0, 1, 3, "send"))
        assert len(tr.for_rank(0)) == 2
        assert len(tr.by_kind("send")) == 2
        assert tr.by_kind("barrier") == []

    def test_disabled_records_nothing(self):
        tr = Trace(enabled=False)
        tr.record(TraceEvent(0, 0, 1, "compute"))
        assert tr.events == [] and tr.dropped == 0


class TestModelHandPoints:
    def test_gk_improved_large_message_form(self):
        # at large n the sqrt term is dominated; comm ~ 5*tw*n^2/p^(2/3)
        m = MODELS["gk-improved"]
        n, p = 2.0**14, 512.0
        comm = m.comm_time(n, p, M)
        leading = 5 * M.tw * n**2 / p ** (2 / 3)
        assert comm == pytest.approx(leading, rel=0.05)

    def test_gk_improved_p1(self):
        assert MODELS["gk-improved"].comm_time(64, 1, M) == 0.0

    def test_allport_models_p1(self):
        from repro.core.allport import ALLPORT_MODELS

        for key in ALLPORT_MODELS:
            assert ALLPORT_MODELS[key].comm_time(64, 1, M) == 0.0

    def test_berntsen_min_procs(self):
        assert MODELS["berntsen"].min_procs(64) == 1.0

    def test_equation_labels(self):
        assert MODELS["cannon"].equation == "(3)"
        assert MODELS["gk"].equation == "(7)"
        assert MODELS["gk-cm5"].equation == "(18)"

    def test_repr(self):
        assert "cannon" in repr(MODELS["cannon"])


class TestCLIMachineOverrides:
    def test_regions_with_custom_params(self, capsys):
        from repro.cli import main

        assert main([
            "regions", "--machine", "cm5", "--ts", "1.0", "--tw", "1.0",
            "--log2-p-max", "8", "--log2-n-max", "4",
        ]) == 0
        assert "ts=1.0" in capsys.readouterr().out

    def test_iso_custom_efficiency(self, capsys):
        from repro.cli import main

        assert main(["iso", "gk", "-e", "0.9", "--log2-p-max", "6"]) == 0
        assert "E = 0.9" in capsys.readouterr().out


class TestOptimalPacketProperty:
    @pytest.mark.parametrize("m", [256, 1024, 8192])
    def test_paper_packet_size_near_optimal_for_pipelined_cost(self, m):
        # cost(s) = (log p + ceil(m/s) - 1) * (ts + tw*s): the paper's
        # s* = sqrt(ts*m/(tw*log p)) should be within 5% of the best s
        from repro.simulator.jho import optimal_packet_words

        p = 64
        lg = math.log2(p)

        def cost(s):
            return (lg + math.ceil(m / s) - 1) * (M.ts + M.tw * s)

        s_star = optimal_packet_words(m, p, M.ts, M.tw)
        best = min(cost(s) for s in range(1, m + 1))
        assert cost(s_star) <= best * 1.05


class TestBlockMatrixDtype:
    def test_dtype_preserved(self, rng):
        from repro.blockops.blockmatrix import BlockMatrix

        m = rng.standard_normal((8, 8)).astype(np.float32)
        bm = BlockMatrix.from_dense(m, 2, 2)
        assert bm.block(0, 0).dtype == np.float32
        assert bm.to_dense().dtype == np.float32

    def test_zeros_dtype(self):
        from repro.blockops.blockmatrix import BlockMatrix

        bm = BlockMatrix.zeros(4, 4, 2, 2, dtype=np.complex128)
        assert bm.to_dense().dtype == np.complex128
