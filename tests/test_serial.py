"""Tests for the serial reference."""

import numpy as np
import pytest

from repro.algorithms.serial import serial_matmul, serial_time, serial_work


class TestSerialMatmul:
    def test_matches_numpy(self, rng):
        A = rng.standard_normal((10, 7))
        B = rng.standard_normal((7, 13))
        assert np.allclose(serial_matmul(A, B), A @ B)

    def test_nonconforming_rejected(self, rng):
        with pytest.raises(ValueError):
            serial_matmul(rng.standard_normal((3, 4)), rng.standard_normal((3, 4)))

    def test_one_dim_rejected(self, rng):
        with pytest.raises(ValueError):
            serial_matmul(rng.standard_normal(4), rng.standard_normal(4))


class TestWork:
    def test_serial_time(self):
        assert serial_time(10) == 1000.0

    def test_serial_time_validation(self):
        with pytest.raises(ValueError):
            serial_time(0)

    def test_serial_work_rectangular(self):
        assert serial_work(2, 3, 4) == 24.0
        assert serial_work(5) == 125.0
