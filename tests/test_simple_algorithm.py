"""Tests for the simple (all-to-all broadcast) algorithm (Section 4.1)."""

import math

import numpy as np
import pytest

from conftest import rand_pair
from repro.algorithms.simple import run_simple
from repro.core.machine import MachineParams
from repro.experiments.validation import simple_exact_time
from repro.simulator.topology import Mesh2D

MACHINE = MachineParams(ts=10.0, tw=2.0)


class TestCorrectness:
    @pytest.mark.parametrize("n,p", [(4, 4), (8, 16), (16, 16), (16, 64), (20, 16)])
    def test_product_exact(self, n, p):
        A, B = rand_pair(n, seed=n + p)
        res = run_simple(A, B, p, MACHINE)
        assert np.allclose(res.C, A @ B)

    def test_single_processor(self):
        A, B = rand_pair(6, seed=2)
        res = run_simple(A, B, 1, MACHINE)
        assert np.allclose(res.C, A @ B)

    def test_on_mesh_uses_ring(self):
        A, B = rand_pair(9, seed=2)
        res = run_simple(A, B, 9, MACHINE, topology=Mesh2D(3, 3))
        assert np.allclose(res.C, A @ B)


class TestValidation:
    def test_nonsquare_p(self):
        A, B = rand_pair(8, seed=0)
        with pytest.raises(ValueError):
            run_simple(A, B, 8, MACHINE)

    def test_too_many_procs(self):
        A, B = rand_pair(3, seed=0)
        with pytest.raises(ValueError):
            run_simple(A, B, 16, MACHINE)


class TestTiming:
    @pytest.mark.parametrize("n,p", [(16, 16), (32, 64), (24, 16)])
    def test_matches_exact_equation(self, n, p):
        A, B = rand_pair(n, seed=5)
        res = run_simple(A, B, p, MACHINE)
        assert res.parallel_time == pytest.approx(simple_exact_time(n, p, MACHINE))

    def test_faster_than_cannon_for_large_ts(self):
        # Eq. 2's ts term is 2*ts*log p vs Cannon's 2*ts*sqrt(p)
        from repro.algorithms.cannon import run_cannon

        machine = MachineParams(ts=500.0, tw=1.0)
        A, B = rand_pair(16, seed=5)
        t_simple = run_simple(A, B, 64, machine).parallel_time
        t_cannon = run_cannon(A, B, 64, machine).parallel_time
        assert t_simple < t_cannon


class TestMemoryInefficiency:
    def test_peak_words_scale(self):
        # Section 4.1: per-processor memory is O(n^2/sqrt(p)), total O(n^2 sqrt(p))
        n, p = 16, 16
        A, B = rand_pair(n, seed=5)
        res = run_simple(A, B, p, MACHINE)
        peaks = [peak for (_, _), _, peak in zip(
            [r[0] for r in res.sim.returns], [r[1] for r in res.sim.returns],
            [r[2] for r in res.sim.returns])]
        side = math.isqrt(p)
        expected = 2 * side * (n * n // p) + n * n // p
        assert all(pk == expected for pk in peaks)
        assert sum(peaks) > 2 * n * n  # strictly more than the operands
