"""Run database: crash-safe salvage, header pinning, derived SQLite index."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.campaign.database import CampaignDB, battery_fingerprint
from repro.core.cache import CorruptArtifactWarning


def header(**overrides) -> dict:
    base = CampaignDB.make_header(
        battery="b" * 64, count=3, oracles={"model_rel_tol": 1.0},
        source={"kind": "autopilot", "seed": 0, "count": 3, "profile": "smoke"},
    )
    base.update(overrides)
    return base


def record(i: int, status: str = "ok", anomalies: list | None = None) -> dict:
    return {
        "id": f"{i:064x}", "name": f"s{i}", "index": i, "status": status,
        "attempts": 1, "error": None if status != "failed" else "boom",
        "rows": [] if status != "failed" else None,
        "anomalies": (anomalies or []) if status != "failed" else None,
        "spec": {"seed": i},
    }


class TestLifecycle:
    def test_fresh_run_writes_header_and_appends(self, tmp_path):
        db = CampaignDB(tmp_path / "camp")
        assert db.open_for_run(header(), resume=False) == {}
        db.append(record(0))
        db.append(record(1, status="anomalous"))
        recs = list(db.records())
        assert [r["index"] for r in recs] == [0, 1]
        assert db.read_header()["count"] == 3

    def test_fresh_run_refuses_to_clobber(self, tmp_path):
        db = CampaignDB(tmp_path / "camp")
        db.open_for_run(header(), resume=False)
        with pytest.raises(FileExistsError, match="already exists"):
            CampaignDB(tmp_path / "camp").open_for_run(header(), resume=False)

    def test_resume_returns_done_records(self, tmp_path):
        db = CampaignDB(tmp_path / "camp")
        db.open_for_run(header(), resume=False)
        db.append(record(0))
        db.append(record(1, status="failed"))
        done = CampaignDB(tmp_path / "camp").open_for_run(header(), resume=True)
        assert set(done) == {record(0)["id"], record(1)["id"]}

    def test_resume_without_file_fails_loudly(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="does not exist"):
            CampaignDB(tmp_path / "camp").open_for_run(header(), resume=True)

    @pytest.mark.parametrize("field, value", [
        ("battery", "f" * 64),
        ("count", 99),
        ("oracles", {"model_rel_tol": 0.5}),
        ("source", {"kind": "autopilot", "seed": 1, "count": 3, "profile": "smoke"}),
    ])
    def test_resume_pins_the_header(self, tmp_path, field, value):
        db = CampaignDB(tmp_path / "camp")
        db.open_for_run(header(), resume=False)
        with pytest.raises(ValueError, match=f"different battery.*{field}"):
            CampaignDB(tmp_path / "camp").open_for_run(
                header(**{field: value}), resume=True)


class TestSalvage:
    def test_truncated_tail_is_repaired(self, tmp_path):
        db = CampaignDB(tmp_path / "camp")
        db.open_for_run(header(), resume=False)
        db.append(record(0))
        clean = db.jsonl_path.read_bytes()
        db.append(record(1))
        # SIGKILL mid-append: the last line is cut short
        full = db.jsonl_path.read_bytes()
        db.jsonl_path.write_bytes(full[:-7])
        with pytest.warns(CorruptArtifactWarning, match="corrupt"):
            done = CampaignDB(tmp_path / "camp").open_for_run(header(), resume=True)
        assert set(done) == {record(0)["id"]}
        assert db.jsonl_path.read_bytes() == clean

    def test_torn_final_newline_is_repaired(self, tmp_path):
        db = CampaignDB(tmp_path / "camp")
        db.open_for_run(header(), resume=False)
        db.append(record(0))
        clean = db.jsonl_path.read_bytes()
        db.append(record(1))
        db.jsonl_path.write_bytes(db.jsonl_path.read_bytes()[:-1])
        with pytest.warns(CorruptArtifactWarning, match="torn tail"):
            done = CampaignDB(tmp_path / "camp").open_for_run(header(), resume=True)
        assert set(done) == {record(0)["id"]}
        assert db.jsonl_path.read_bytes() == clean

    def test_bitflipped_interior_line_truncates_from_there(self, tmp_path):
        db = CampaignDB(tmp_path / "camp")
        db.open_for_run(header(), resume=False)
        db.append(record(0))
        prefix_len = db.jsonl_path.stat().st_size
        db.append(record(1))
        db.append(record(2))
        raw = bytearray(db.jsonl_path.read_bytes())
        raw[prefix_len + 5] ^= 0xFF  # corrupt record 1 in place
        db.jsonl_path.write_bytes(bytes(raw))
        with pytest.warns(CorruptArtifactWarning, match="everything after"):
            done = CampaignDB(tmp_path / "camp").open_for_run(header(), resume=True)
        # records 1 AND 2 re-run: the file is truncated back to record 0
        assert set(done) == {record(0)["id"]}
        assert db.jsonl_path.stat().st_size == prefix_len

    def test_unreadable_header_is_not_resumable(self, tmp_path):
        path = tmp_path / "camp.jsonl"
        path.write_text("not json\n")
        with pytest.warns(CorruptArtifactWarning):
            with pytest.raises(ValueError, match="no readable header"):
                CampaignDB(tmp_path / "camp").open_for_run(header(), resume=True)

    def test_wrong_kind_is_not_resumable(self, tmp_path):
        path = tmp_path / "camp.jsonl"
        path.write_text(json.dumps({"kind": "sweep-checkpoint", "version": 1}) + "\n")
        with pytest.raises(ValueError, match="not a version-1 campaign"):
            CampaignDB(tmp_path / "camp").open_for_run(header(), resume=True)


class TestSqlite:
    def test_index_mirrors_the_jsonl(self, tmp_path):
        db = CampaignDB(tmp_path / "camp")
        db.open_for_run(header(), resume=False)
        db.append(record(0))
        db.append(record(1, status="anomalous", anomalies=[
            {"oracle": "retransmit-storm", "severity": "warn",
             "algorithm": "cannon", "n": 16, "p": 4, "message": "storm"},
        ]))
        db.append(record(2, status="failed"))
        db.sync_sqlite()
        con = sqlite3.connect(db.sqlite_path)
        try:
            assert con.execute("SELECT COUNT(*) FROM scenarios").fetchone()[0] == 3
            status = dict(con.execute("SELECT idx, status FROM scenarios"))
            assert status == {0: "ok", 1: "anomalous", 2: "failed"}
            anom = con.execute(
                "SELECT scenario_idx, oracle, p FROM anomalies").fetchall()
            assert anom == [(1, "retransmit-storm", 4)]
            stored = json.loads(con.execute(
                "SELECT record FROM scenarios WHERE idx=1").fetchone()[0])
            assert stored["id"] == record(1)["id"]
        finally:
            con.close()

    def test_rebuild_is_deterministic(self, tmp_path):
        db = CampaignDB(tmp_path / "camp")
        db.open_for_run(header(), resume=False)
        db.append(record(0))
        db.sync_sqlite()
        first = "\n".join(sqlite3.connect(db.sqlite_path).iterdump())
        db.sync_sqlite()
        second = "\n".join(sqlite3.connect(db.sqlite_path).iterdump())
        assert first == second


class TestFingerprints:
    def test_fingerprint_tracks_bytes(self, tmp_path):
        db = CampaignDB(tmp_path / "camp")
        db.open_for_run(header(), resume=False)
        a = db.fingerprint()
        db.append(record(0))
        assert db.fingerprint() != a

    def test_battery_fingerprint_sensitivity(self):
        ids = ["a" * 64, "b" * 64]
        base = battery_fingerprint(ids, {"model_rel_tol": 1.0})
        assert battery_fingerprint(ids, {"model_rel_tol": 1.0}) == base
        assert battery_fingerprint(list(reversed(ids)), {"model_rel_tol": 1.0}) != base
        assert battery_fingerprint(ids, {"model_rel_tol": 0.5}) != base
