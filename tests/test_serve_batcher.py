"""MicroBatcher: coalescing, flush causes, grouping, and bit-identity.

No pytest-asyncio here: every test drives its own event loop through
``asyncio.run`` — the batcher only needs a running loop while requests
are in flight.
"""

import asyncio

import numpy as np
import pytest

from repro.core.machine import PRESETS, MachineParams
from repro.core.prediction import predict_points, prediction_counts
from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import ProtocolError

NCUBE = PRESETS["ncube2-like"]
MIMD = PRESETS["future-mimd"]


def _points(count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (float(2.0 ** rng.uniform(0, 16)), float(2.0 ** rng.uniform(0, 30)))
        for _ in range(count)
    ]


class TestCoalescing:
    def test_concurrent_requests_share_one_scan(self):
        batcher = MicroBatcher(max_batch=256, max_wait_us=2000.0)
        pts = _points(50)

        async def go():
            before = prediction_counts()["calls"]
            records = await asyncio.gather(
                *(batcher.predict_one(NCUBE, n, p) for n, p in pts)
            )
            return records, prediction_counts()["calls"] - before

        records, calls = asyncio.run(go())
        assert len(records) == 50
        assert calls == 1  # one vectorized scan for all 50 requests
        stats = batcher.stats()
        assert stats["batches"] == 1
        assert stats["batched_points"] == 50
        assert stats["max_batch_seen"] == 50
        assert stats["timer_flushes"] == 1
        assert stats["pending_groups"] == 0

    def test_full_batch_flushes_immediately(self):
        batcher = MicroBatcher(max_batch=8, max_wait_us=10_000_000.0)
        pts = _points(20, seed=1)

        async def go():
            futures = [
                asyncio.ensure_future(batcher.predict_one(NCUBE, n, p))
                for n, p in pts
            ]
            await asyncio.sleep(0)
            # 20 requests with max_batch=8: two groups flushed on fill,
            # without waiting for the (deliberately huge) timer
            assert batcher.stats()["full_flushes"] == 2
            await batcher.flush()  # drain the 4-point remainder
            return await asyncio.gather(*futures)

        records = asyncio.run(go())
        assert len(records) == 20
        stats = batcher.stats()
        assert stats["full_flushes"] == 2
        assert stats["batched_points"] == 20
        assert stats["max_batch_seen"] == 8

    def test_disabled_mode_evaluates_immediately(self):
        batcher = MicroBatcher(enabled=False)

        async def go():
            return await batcher.predict_one(NCUBE, 64.0, 16.0)

        rec = asyncio.run(go())
        assert rec["algorithm"] is not None
        stats = batcher.stats()
        assert stats["unbatched"] == 1
        assert stats["batches"] == 0

    def test_predict_many_joins_one_group(self):
        batcher = MicroBatcher(max_batch=256, max_wait_us=1000.0)
        pts = _points(12, seed=2)

        async def go():
            return await batcher.predict_many(NCUBE, pts)

        records = asyncio.run(go())
        assert len(records) == 12
        assert batcher.stats()["batches"] == 1

    def test_mixed_machines_use_separate_batches(self):
        batcher = MicroBatcher(max_batch=256, max_wait_us=1000.0)
        pts = _points(10, seed=3)

        async def go():
            a = asyncio.gather(*(batcher.predict_one(NCUBE, n, p) for n, p in pts))
            b = asyncio.gather(*(batcher.predict_one(MIMD, n, p) for n, p in pts))
            return await a, await b

        asyncio.run(go())
        stats = batcher.stats()
        assert stats["batches"] == 2  # one scan per machine fingerprint
        assert stats["batched_points"] == 20

    def test_fingerprint_collision_is_refused(self, monkeypatch):
        batcher = MicroBatcher(max_batch=256, max_wait_us=1000.0)
        monkeypatch.setattr(
            "repro.serve.batcher.machine_fingerprint", lambda machine: "same"
        )

        async def go():
            first = asyncio.ensure_future(batcher.predict_one(NCUBE, 8.0, 4.0))
            await asyncio.sleep(0)  # let the first request open the group
            with pytest.raises(ProtocolError, match="collision"):
                await batcher.predict_one(MIMD, 8.0, 4.0)
            return await first

        rec = asyncio.run(go())
        assert rec["n"] == 8.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_wait_us=-1.0)

    def test_flush_drains_pending_groups(self):
        batcher = MicroBatcher(max_batch=256, max_wait_us=10_000_000.0)

        async def go():
            fut = asyncio.ensure_future(batcher.predict_one(NCUBE, 16.0, 4.0))
            await asyncio.sleep(0)
            assert batcher.stats()["pending_groups"] == 1
            await batcher.flush()
            return await fut

        rec = asyncio.run(go())
        assert rec["algorithm"] is not None
        assert batcher.stats()["pending_groups"] == 0


class TestBitIdentity:
    @pytest.mark.parametrize("seed", range(3))
    def test_batched_equals_direct_single_point(self, seed):
        """Fuzz: a batched record equals the per-request record exactly.

        Both routes end in ``predict_points``; the batcher must not
        perturb a single float anywhere in the record (tie rule
        included — it lives inside the shared winner scan).
        """
        pts = _points(40, seed=seed)
        batcher = MicroBatcher(max_batch=64, max_wait_us=500.0)

        async def go():
            return await asyncio.gather(
                *(batcher.predict_one(NCUBE, n, p) for n, p in pts)
            )

        batched = asyncio.run(go())
        for (n, p), rec in zip(pts, batched):
            direct = predict_points(NCUBE, [n], [p]).point(0)
            assert rec == direct  # exact equality, not approx

    def test_duplicate_points_in_one_batch(self):
        batcher = MicroBatcher(max_batch=64, max_wait_us=500.0)

        async def go():
            return await asyncio.gather(
                *(batcher.predict_one(NCUBE, 512.0, 256.0) for _ in range(5))
            )

        records = asyncio.run(go())
        assert all(r == records[0] for r in records)
