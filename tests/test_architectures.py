"""Tests for the architectures experiment (mesh / hypercube / fully connected)."""

import pytest

from repro.core.machine import MachineParams
from repro.experiments import architectures

M = MachineParams(ts=20.0, tw=2.0)


class TestArchitectures:
    def test_cannon_invariant_under_cut_through(self):
        """Section 4.4: Cannon performs the same on mesh and hypercube."""
        rows = {r["topology"]: r for r in architectures.run(M, n=16, p=16)}
        t_hc = rows["hypercube"]["T_cannon_ct"]
        assert rows["mesh"]["T_cannon_ct"] == t_hc
        assert rows["fully-connected"]["T_cannon_ct"] == t_hc

    def test_simple_invariant_only_without_hop_costs(self):
        rows = {r["topology"]: r for r in architectures.run(M, n=16, p=16)}
        # under cut-through with th=0, hop counts are free everywhere...
        # (mesh uses the ring all-gather: different algorithm realization,
        # so only hypercube and fully-connected are directly comparable)
        assert rows["hypercube"]["T_simple_ct"] == rows["fully-connected"]["T_simple_ct"]

    def test_store_and_forward_penalizes_mesh_multi_hop(self):
        rows = {r["topology"]: r for r in architectures.run(M, n=16, p=16)}
        # sf makes multi-hop transfers cost per hop: the mesh's ring
        # all-gather stays single-hop, but the hypercube's recursive
        # doubling on row-major-embedded... rather: compare each topology's
        # sf time against its own ct time
        for name, row in rows.items():
            assert row["T_simple_sf"] >= row["T_simple_ct"]
            assert row["T_cannon_sf"] >= row["T_cannon_ct"]
        # Cannon's sf penalty is only the per-hop term on single-hop rolls
        hc = rows["hypercube"]
        assert hc["T_cannon_sf"] - hc["T_cannon_ct"] < 0.1 * hc["T_cannon_ct"]

    def test_format(self):
        text = architectures.format_text(architectures.run(M, n=16, p=16))
        assert "Architectures study" in text and "mesh" in text
