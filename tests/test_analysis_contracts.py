"""Architecture-contract rules: CACHE001, ENG007, SWEEP001, DRIVER001."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, analyze_source

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def ids(src: str, path: str, **kw) -> list[str]:
    return sorted({f.rule_id for f in analyze_source(textwrap.dedent(src), path, **kw)})


# -- CACHE001: complete machine fingerprints ----------------------------------------


def test_partial_fingerprint_in_checkpoint_header_fires():
    findings = analyze_source(
        textwrap.dedent(
            """
            def _checkpoint_header(machine, seed):
                return {
                    "machine": {"ts": machine.ts, "tw": machine.tw},
                    "seed": seed,
                }
            """
        ),
        "src/repro/experiments/probe.py",
        select=["CACHE001"],
    )
    assert [f.rule_id for f in findings] == ["CACHE001"]
    # the finding names every dropped field
    for missing in ("th", "routing", "all_port", "unit_time"):
        assert missing in findings[0].message


def test_partial_fingerprint_passed_to_key_for_fires():
    assert ids(
        """
        def shard(machine, n):
            return key_for({"ts": machine.ts, "tw": machine.tw, "n": n})
        """,
        "src/repro/core/probe.py",
        select=["CACHE001"],
    ) == ["CACHE001"]


def test_complete_fingerprint_is_clean():
    assert ids(
        """
        def _checkpoint_header(machine, seed):
            return {
                "machine": {
                    "ts": machine.ts, "tw": machine.tw, "th": machine.th,
                    "routing": machine.routing, "all_port": machine.all_port,
                    "unit_time": machine.unit_time, "name": machine.name,
                },
                "seed": seed,
            }
        """,
        "src/repro/experiments/probe.py",
        select=["CACHE001"],
    ) == []


def test_display_dicts_outside_keyish_functions_are_clean():
    # a partial dict built for human-readable output must not fire
    assert ids(
        """
        def summarize(machine):
            return {"ts": machine.ts, "tw": machine.tw}
        """,
        "src/repro/experiments/probe.py",
        select=["CACHE001"],
    ) == []


# -- ENG007: heap-insertion discipline, repo-wide -----------------------------------


def test_heappush_outside_schedule_fires_anywhere():
    assert ids(
        """
        from heapq import heappush
        def enqueue(heap, event):
            heappush(heap, event)
        """,
        "src/repro/experiments/probe.py",
        select=["ENG007"],
    ) == ["ENG007"]


def test_heappush_inside_schedule_helper_is_sanctioned():
    assert ids(
        """
        from heapq import heappush
        class Engine:
            def _schedule(self, when, priority, rank):
                heappush(self._event_heap, (when, priority, 0, rank))
        """,
        "src/repro/experiments/probe.py",
        select=["ENG007"],
    ) == []


@pytest.mark.parametrize("call", ["heapq.heapreplace(h, e)", "heapq.heappushpop(h, e)"])
def test_heap_replace_variants_fire(call):
    assert ids(
        f"""
        import heapq
        def enqueue(h, e):
            {call}
        """,
        "src/repro/core/probe.py",
        select=["ENG007"],
    ) == ["ENG007"]


# -- SWEEP001: worker global capture ------------------------------------------------


def test_worker_reading_runtime_mutated_global_fires():
    findings = analyze_source(
        textwrap.dedent(
            """
            _config = {}

            def tune(key, value):
                _config[key] = value

            def worker(n):
                return n * _config.get("scale", 1)

            def run(pool, sizes):
                return [pool.submit(worker, n) for n in sizes]
            """
        ),
        "src/repro/experiments/probe.py",
        select=["SWEEP001"],
    )
    assert [f.rule_id for f in findings] == ["SWEEP001"]
    assert "_config" in findings[0].message
    assert findings[0].severity == "warn"


def test_import_time_constant_registry_is_clean():
    # a registry built once at import time is fine to read in a worker
    assert ids(
        """
        TABLE = {"a": 1, "b": 2}

        def worker(n):
            return TABLE["a"] * n

        def run(pool, sizes):
            return [pool.submit(worker, n) for n in sizes]
        """,
        "src/repro/experiments/probe.py",
        select=["SWEEP001"],
    ) == []


def test_mutated_global_not_read_by_worker_is_clean():
    assert ids(
        """
        _log = []

        def note(msg):
            _log.append(msg)

        def worker(n):
            return n * n

        def run(pool, sizes):
            return [pool.submit(worker, n) for n in sizes]
        """,
        "src/repro/experiments/probe.py",
        select=["SWEEP001"],
    ) == []


# -- DRIVER001: scheduler/fault_plan threading --------------------------------------


def test_driver_missing_fault_plan_fires_twice():
    findings = analyze_source(
        textwrap.dedent(
            """
            def run_newalg(A, B, p, machine, *, trace=False, scheduler=None):
                return Engine(None, machine, trace=trace, scheduler=scheduler).run([])
            """
        ),
        "src/repro/algorithms/probe.py",
        select=["DRIVER001"],
    )
    # once for the signature, once for the Engine(...) call
    assert [f.rule_id for f in findings] == ["DRIVER001", "DRIVER001"]


def test_fully_threaded_driver_is_clean():
    assert ids(
        """
        def run_newalg(A, B, p, machine, *, trace=False, scheduler=None, fault_plan=None):
            return Engine(
                None, machine, trace=trace, scheduler=scheduler, fault_plan=fault_plan
            ).run([])
        """,
        "src/repro/algorithms/probe.py",
        select=["DRIVER001"],
    ) == []


def test_driver_rule_scoped_to_algorithms_package():
    assert ids(
        """
        def run_report(A):
            return Engine(None, None).run([])
        """,
        "src/repro/experiments/probe.py",
        select=["DRIVER001"],
    ) == []


# -- the real tree honours every contract -------------------------------------------


def test_contract_rules_clean_on_real_tree():
    report = analyze_paths(
        [SRC], select=["CACHE001", "ENG007", "SWEEP001", "DRIVER001"]
    )
    assert report.findings == [], "\n".join(f.format() for f in report.findings)


def test_every_registered_driver_threads_both_keywords():
    """Runtime cross-check of what DRIVER001 asserts statically."""
    import inspect

    from repro.algorithms import registry

    for key, entry in registry.REGISTRY.items():
        params = inspect.signature(entry.run).parameters
        has_var_kw = any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
        )
        for required in ("scheduler", "fault_plan"):
            assert required in params or has_var_kw, f"{key} driver lacks {required}="
