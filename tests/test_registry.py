"""Tests for the algorithm registry (Section 10's library)."""

import numpy as np
import pytest

from conftest import rand_pair
from repro.algorithms import registry
from repro.core.machine import MachineParams

M = MachineParams(ts=10.0, tw=2.0)


class TestLookup:
    def test_all_six_registered(self):
        assert set(registry.REGISTRY) == {
            "simple",
            "cannon",
            "fox",
            "berntsen",
            "dns",
            "gk",
        }

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            registry.get("strassen")

    def test_entries_carry_metadata(self):
        e = registry.get("gk")
        assert e.section == "4.6"
        assert e.model_key == "gk"


class TestFeasibility:
    def test_grid_algorithms(self):
        assert registry.get("cannon").feasible(16, 16)
        assert not registry.get("cannon").feasible(16, 8)  # not a square
        assert not registry.get("cannon").feasible(3, 16)  # sqrt(p) > n
        assert not registry.get("cannon").feasible(16, 36)  # side not a power of 2

    def test_berntsen(self):
        assert registry.get("berntsen").feasible(16, 64)
        assert not registry.get("berntsen").feasible(8, 64)  # p^2 > n^3
        assert not registry.get("berntsen").feasible(16, 16)  # not 2^(3q)

    def test_gk(self):
        assert registry.get("gk").feasible(8, 512)
        assert not registry.get("gk").feasible(7, 512)  # p > n^3
        assert not registry.get("gk").feasible(8, 100)  # not a cube

    def test_dns(self):
        assert registry.get("dns").feasible(4, 32)  # r = 2
        assert registry.get("dns").feasible(4, 64)  # r = 4 = n
        assert not registry.get("dns").feasible(4, 48)  # r = 3 not pow2
        assert not registry.get("dns").feasible(4, 8)  # p < n^2
        assert not registry.get("dns").feasible(6, 72)  # n not pow2

    def test_feasible_algorithms_listing(self):
        keys = registry.feasible_algorithms(16, 64)
        assert "cannon" in keys and "gk" in keys and "berntsen" in keys
        assert "dns" not in keys  # p < n^2


class TestRunDispatcher:
    @pytest.mark.parametrize("key,n,p", [
        ("simple", 8, 16),
        ("cannon", 8, 16),
        ("fox", 8, 16),
        ("berntsen", 16, 64),
        ("gk", 8, 64),
        ("dns", 4, 32),
    ])
    def test_dispatch_and_verify(self, key, n, p):
        A, B = rand_pair(n, seed=p)
        res = registry.run(key, A, B, p, M)
        assert np.allclose(res.C, A @ B)
        assert res.p == p

    def test_dns_one_per_element_dispatch(self):
        A, B = rand_pair(4, seed=1)
        res = registry.run("dns", A, B, 64, M)
        assert res.algorithm == "dns"
        assert np.allclose(res.C, A @ B)

    def test_dns_bad_p(self):
        A, B = rand_pair(4, seed=1)
        with pytest.raises(ValueError):
            registry.run("dns", A, B, 40, M)
