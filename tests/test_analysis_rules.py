"""Per-rule tests for the domain static analysis.

Each rule gets at least one minimal known-bad snippet (must be flagged)
and one known-good snippet (must pass), exercised through the public
:func:`repro.analysis.analyze_source` entry point so path scoping and
suppression behave exactly as in the CLI.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import RULES, analyze_source

#: paths that put a snippet inside each rule's scope
SIM_PATH = "src/repro/simulator/engine.py"
CORE_PATH = "src/repro/core/models.py"
REQ_PATH = "src/repro/simulator/request.py"
ANY_PATH = "src/repro/experiments/sweep.py"


def findings(code: str, path: str = ANY_PATH, **kw) -> list:
    return analyze_source(textwrap.dedent(code), path, **kw)


def rule_ids(code: str, path: str = ANY_PATH, **kw) -> set[str]:
    return {f.rule_id for f in findings(code, path, **kw)}


def test_rule_catalogue_is_complete():
    assert set(RULES) == {
        "DET001", "DET002", "DET003", "DET004",
        "DET010", "DET011", "DET012",
        "MOD001", "MOD002", "MOD003",
        "DIM001", "DIM002",
        "ENG001", "ENG002", "ENG003", "ENG004", "ENG005", "ENG006", "ENG007",
        "ENG008",
        "CACHE001", "SWEEP001", "DRIVER001",
        "SRV001",
    }
    for rule in RULES.values():
        assert rule.name and rule.description
        assert rule.severity in ("error", "warn", "info")


# -- DET001: unseeded / global RNG -------------------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "import random\nx = random.random()",
        "import random\nrandom.seed(42)",
        "import random\nrng = random.Random()",
        "import random\nrng = random.SystemRandom()",
        "import numpy as np\nrng = np.random.default_rng()",
        "import numpy as np\nnp.random.seed(0)",
        "import numpy as np\nx = np.random.standard_normal(4)",
        "from numpy.random import default_rng\nrng = default_rng()",
    ],
)
def test_det001_flags(snippet):
    assert "DET001" in rule_ids(snippet)


@pytest.mark.parametrize(
    "snippet",
    [
        "import random\nrng = random.Random(7)",
        "import numpy as np\nrng = np.random.default_rng(0)",
        "import numpy as np\nrng = np.random.default_rng((seed, n))",
        "from numpy.random import default_rng\nrng = default_rng(123)",
        # no import of random: attribute access on unrelated objects is fine
        "x = obj.random.random()",
    ],
)
def test_det001_passes(snippet):
    assert "DET001" not in rule_ids(snippet)


# -- DET002: wall clock in simulator/core ------------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "import time\nt = time.time()",
        "import time\nt = time.perf_counter()",
        "from time import monotonic\nt = monotonic()",
        "from datetime import datetime\nt = datetime.now()",
    ],
)
def test_det002_flags_in_simulator(snippet):
    assert "DET002" in rule_ids(snippet, path=SIM_PATH)
    assert "DET002" in rule_ids(snippet, path=CORE_PATH)


def test_det002_scoped_to_simulator_and_core():
    code = "import time\nt = time.time()"
    # benchmarks and experiments may read the host clock
    assert "DET002" not in rule_ids(code, path="benchmarks/perf_guard.py")
    assert "DET002" not in rule_ids(code, path="src/repro/experiments/report.py")


def test_det002_passes_on_logical_clocks():
    code = "def step(st, cost):\n    st.clock += cost\n"
    assert "DET002" not in rule_ids(code, path=SIM_PATH)


# -- DET003: set iteration ----------------------------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "def f(xs):\n    s = set(xs)\n    for x in s:\n        print(x)",
        "def f(xs):\n    for x in {1, 2, 3}:\n        print(x)",
        "def f(xs):\n    return [x for x in set(xs)]",
        "def f(xs):\n    s = frozenset(xs)\n    return {x: 1 for x in s}",
        "def f(xs):\n    s = set(xs)\n    return s.pop()",
        "pending = set()\nfor r in pending:\n    pass",
    ],
)
def test_det003_flags(snippet):
    assert "DET003" in rule_ids(snippet)


@pytest.mark.parametrize(
    "snippet",
    [
        "def f(xs):\n    s = set(xs)\n    for x in sorted(s):\n        print(x)",
        "def f(xs):\n    for x in list(xs):\n        print(x)",
        "def f(xs):\n    s = set(xs)\n    return len(s)",
        # list.pop() is positional, not arbitrary
        "def f(xs):\n    s = list(xs)\n    return s.pop()",
        # a set local in one function must not taint another scope's name
        "def f(xs):\n    s = set(xs)\n    return s\n\ndef g(s):\n    for x in s:\n        print(x)",
    ],
)
def test_det003_passes(snippet):
    assert "DET003" not in rule_ids(snippet)


def test_det003_does_not_double_report_nested_functions():
    code = textwrap.dedent(
        """
        def outer(xs):
            def inner():
                for x in set(xs):
                    pass
            return inner
        """
    )
    flagged = [f for f in analyze_source(code, ANY_PATH) if f.rule_id == "DET003"]
    assert len(flagged) == 1


# -- DET004: shared mutable dataclass defaults --------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        """
        from dataclasses import dataclass, field
        @dataclass
        class R:
            xs: list = field(default=list())
        """,
        """
        from dataclasses import dataclass
        SHARED = []
        @dataclass
        class R:
            xs: list = SHARED
        """,
        """
        from collections import deque
        from dataclasses import dataclass
        @dataclass
        class R:
            q: deque = deque()
        """,
    ],
)
def test_det004_flags(snippet):
    assert "DET004" in rule_ids(snippet)


@pytest.mark.parametrize(
    "snippet",
    [
        """
        from dataclasses import dataclass, field
        @dataclass
        class R:
            xs: list = field(default_factory=list)
            n: int = 0
            name: str = ""
        """,
        """
        from dataclasses import dataclass
        @dataclass
        class R:
            tag: tuple = ()
        """,
    ],
)
def test_det004_passes(snippet):
    assert "DET004" not in rule_ids(snippet)


# -- MOD001: scalar/grid pairs ------------------------------------------------------


def test_mod001_flags_unpaired_override():
    code = """
    class BadModel(AlgorithmModel):
        def overhead(self, n, p, machine):
            return 0.0
    """
    assert "MOD001" in rule_ids(code, path=CORE_PATH)


def test_mod001_flags_grid_only_override():
    code = """
    class BadModel(AlgorithmModel):
        def time_grid(self, n, p, machine):
            return n * 0.0
    """
    assert "MOD001" in rule_ids(code, path=CORE_PATH)


def test_mod001_passes_paired_and_hook_overrides():
    code = """
    class GoodModel(AlgorithmModel):
        def comm_time(self, n, p, machine):
            return machine.ts * p

        def overhead(self, n, p, machine):
            return p * self.comm_time(n, p, machine)

        def overhead_grid(self, n, p, machine):
            return p * self.comm_time(n, p, machine)
    """
    assert "MOD001" not in rule_ids(code, path=CORE_PATH)


def test_mod001_ignores_non_model_classes():
    code = """
    class Helper:
        def overhead(self, n, p, machine):
            return 0.0
    """
    assert "MOD001" not in rule_ids(code, path=CORE_PATH)


# -- MOD002: overhead term unit vocabulary ------------------------------------------


def test_mod002_flags_unknown_key():
    code = """
    class M(AlgorithmModel):
        def overhead_terms(self, n, p, machine):
            return {"latency": machine.ts * p}
    """
    assert "MOD002" in rule_ids(code, path=CORE_PATH)


def test_mod002_flags_dimension_mismatch():
    # a ts-typed term that actually scales with tw
    code = """
    class M(AlgorithmModel):
        def overhead_terms(self, n, p, machine):
            return {"ts": machine.tw * n**2 * p}
    """
    msgs = [f.message for f in findings(code, path=CORE_PATH) if f.rule_id == "MOD002"]
    assert msgs and any("tw" in m for m in msgs)


def test_mod002_flags_missing_dimension_through_alias():
    code = """
    class M(AlgorithmModel):
        def overhead_terms(self, n, p, machine):
            c = machine.ts
            return {"ts_tw_total": 2 * c * p}
    """
    assert "MOD002" in rule_ids(code, path=CORE_PATH)


def test_mod002_flags_computed_keys_and_nonliteral_returns():
    code = """
    class M(AlgorithmModel):
        def overhead_terms(self, n, p, machine):
            return dict(ts=machine.ts * p)
    """
    assert "MOD002" in rule_ids(code, path=CORE_PATH)


def test_mod002_passes_vocabulary_and_aliases():
    code = """
    class M(AlgorithmModel):
        def overhead_terms(self, n, p, machine):
            c = machine.ts + machine.tw
            lg = log2(p)
            return {
                "ts": 2 * machine.ts * p * lg,
                "tw_roll": 2 * machine.tw * n**2 * p**0.5,
                "ts_tw_relay": 5 * c * p,
                "sqrt": n * (machine.ts * machine.tw * lg) ** 0.5,
                "total": p * self.comm_time(n, p, machine),
            }
    """
    assert "MOD002" not in rule_ids(code, path=CORE_PATH)


# -- MOD003: applicability stays derived --------------------------------------------


def test_mod003_flags_applicable_override():
    code = """
    class M(AlgorithmModel):
        def applicable(self, n, p):
            return True
        def applicable_grid(self, n, p):
            return (p <= n**2)
    """
    ids = [f for f in findings(code, path=CORE_PATH) if f.rule_id == "MOD003"]
    assert len(ids) == 2


def test_mod003_passes_bounds_overrides():
    code = """
    class M(AlgorithmModel):
        def min_procs(self, n):
            return n**2
        def max_procs(self, n):
            return n**3
    """
    assert "MOD003" not in rule_ids(code, path=CORE_PATH)


# -- ENG001: request dataclasses are slotted ----------------------------------------


def test_eng001_flags_unslotted_request():
    code = """
    from dataclasses import dataclass
    @dataclass
    class Probe:
        cost: float
    """
    assert "ENG001" in rule_ids(code, path=REQ_PATH)


def test_eng001_passes_slots_true_and_scope():
    code = """
    from dataclasses import dataclass
    @dataclass(slots=True)
    class Probe:
        cost: float
    """
    assert "ENG001" not in rule_ids(code, path=REQ_PATH)
    # outside request.py the rule does not apply
    unslotted = """
    from dataclasses import dataclass
    @dataclass
    class Row:
        n: int
    """
    assert "ENG001" not in rule_ids(unslotted, path=ANY_PATH)


# -- ENG002: trace objects built only by the trace layer ----------------------------


def test_eng002_flags_fabricated_trace_events():
    code = """
    from repro.simulator.trace import TraceEvent
    def fake(rank):
        return TraceEvent(rank, 0.0, 1.0, "compute")
    """
    assert "ENG002" in rule_ids(code, path="src/repro/experiments/report.py")


def test_eng002_allows_engine_and_trace_py():
    code = """
    from repro.simulator.trace import TraceEvent
    e = TraceEvent(0, 0.0, 1.0, "compute")
    """
    assert "ENG002" not in rule_ids(code, path="src/repro/simulator/engine.py")
    assert "ENG002" not in rule_ids(code, path="src/repro/simulator/trace.py")


# -- ENG003: no float == on clocks --------------------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "def f(st, arrival):\n    return st.clock == arrival",
        "def f(a, b):\n    return a.finish_time != b.finish_time",
        "def f(res):\n    return res.parallel_time == 0.0",
    ],
)
def test_eng003_flags(snippet):
    assert "ENG003" in rule_ids(snippet, path=SIM_PATH)


@pytest.mark.parametrize(
    "snippet",
    [
        "def f(st, arrival):\n    return arrival > st.clock",
        "def f(n, total):\n    return n == total",  # counters are fine
        "def f(kind):\n    return kind == 'compute'",
    ],
)
def test_eng003_passes(snippet):
    assert "ENG003" not in rule_ids(snippet, path=SIM_PATH)


def test_eng003_scoped_to_simulator():
    code = "def f(a, b):\n    return a.clock == b.clock"
    assert "ENG003" not in rule_ids(code, path=CORE_PATH)


# -- ENG004: message sizes flow through words_of ------------------------------------

COLLECTIVES_PATH = "src/repro/simulator/collectives.py"
JHO_PATH = "src/repro/simulator/jho.py"


@pytest.mark.parametrize(
    "snippet",
    [
        "def f(dst, data):\n    yield Send(dst=dst, data=data, nwords=data.size)",
        "def f(dst, data):\n    yield Send(dst=dst, data=data, nwords=data.nbytes // 8)",
        "def f(dst, flat, k, s):\n"
        "    packet = flat[k * s : (k + 1) * s]\n"
        "    yield Send(dst=dst, data=packet, nwords=packet.size, tag=1)",
        "def f(group, data):\n"
        "    yield CollectiveOp(kind='bcast', group=group, data=data, nwords=data.size)",
    ],
)
def test_eng004_flags(snippet):
    assert "ENG004" in rule_ids(snippet, path=COLLECTIVES_PATH)
    assert "ENG004" in rule_ids(snippet, path=JHO_PATH)


@pytest.mark.parametrize(
    "snippet",
    [
        "def f(dst, data):\n    yield Send(dst=dst, data=data, nwords=words_of(data))",
        "def f(dst, data, nwords):\n    yield Send(dst=dst, data=data, nwords=nwords)",
        "def f(dst, data, m):\n    yield Send(dst=dst, data=data, nwords=2 * m)",
        # positional nwords is not a Send keyword; other calls may use .size
        "def f(data):\n    out = np.empty(data.size)",
        "def f(dst, data):\n    yield Recv(src=dst, tag=data.size)",
    ],
)
def test_eng004_passes(snippet):
    assert "ENG004" not in rule_ids(snippet, path=COLLECTIVES_PATH)


def test_eng004_scoped_to_collective_layers():
    code = "def f(dst, data):\n    yield Send(dst=dst, data=data, nwords=data.size)"
    # rank programs and algorithm drivers may size their own point-to-point sends
    assert "ENG004" not in rule_ids(code, path=SIM_PATH)
    assert "ENG004" not in rule_ids(code, path="src/repro/algorithms/cannon.py")


# -- ENG005: simulator randomness only via faults._stream ---------------------------

FAULTS_PATH = "src/repro/simulator/faults.py"


@pytest.mark.parametrize(
    "snippet",
    [
        "import numpy as np\nrng = np.random.default_rng(42)",
        "from numpy.random import default_rng\nrng = default_rng((1, 2))",
        "import numpy as np\nrng = np.random.RandomState(0)",
        "import random\nrng = random.Random(7)",
        "import random\nx = random.random()",
    ],
)
def test_eng005_flags_rng_in_simulator(snippet):
    # even *seeded* construction is flagged inside the simulator: fault
    # randomness must come from the FaultPlan's keyed stream family
    assert "ENG005" in rule_ids(snippet, path=SIM_PATH)
    assert "ENG005" in rule_ids(snippet, path=FAULTS_PATH)


def test_eng005_allows_stream_in_faults():
    code = """\
    import numpy as np

    def _stream(*key):
        return np.random.default_rng(key)
    """
    assert "ENG005" not in rule_ids(code, path=FAULTS_PATH)
    # the same helper anywhere else in the simulator is still a violation
    assert "ENG005" in rule_ids(code, path=SIM_PATH)


def test_eng005_scoped_to_simulator():
    code = "import numpy as np\nrng = np.random.default_rng((seed, n))"
    assert "ENG005" not in rule_ids(code, path=CORE_PATH)
    assert "ENG005" not in rule_ids(code, path="src/repro/experiments/figures45.py")


# -- ENG006: event-heap hot-loop disciplines ----------------------------------------


def test_eng006_flags_unguarded_trace_event():
    code = """\
    def _run(self, r, clock, end):
        self.trace.record(TraceEvent(r, clock, end, "compute"))
    """
    assert "ENG006" in rule_ids(code, path=SIM_PATH)


def test_eng006_flags_trace_event_under_unrelated_guard():
    code = """\
    def _run(self, r, clock, end, verbose):
        if verbose:
            self.trace.record(TraceEvent(r, clock, end, "compute"))
    """
    assert "ENG006" in rule_ids(code, path=SIM_PATH)


@pytest.mark.parametrize(
    "guard",
    ["self.trace.enabled", "tracing", "tracing and cost > 0.0"],
)
def test_eng006_allows_guarded_trace_event(guard):
    code = f"""\
    def _run(self, r, clock, end, tracing, cost):
        if {guard}:
            self.trace.record(TraceEvent(r, clock, end, "compute", f"x{{cost}}"))
    """
    assert "ENG006" not in rule_ids(code, path=SIM_PATH)


def test_eng006_flags_heappush_outside_schedule():
    code = """\
    from heapq import heappush

    def _run_heap(self, when, rank):
        heappush(self._event_heap, (when, 0, 0, rank))
    """
    assert "ENG006" in rule_ids(code, path=SIM_PATH)


def test_eng006_allows_heappush_inside_schedule():
    code = """\
    from heapq import heappush

    def _schedule(self, when, priority, rank):
        self._event_seq = seq = self._event_seq + 1
        heappush(self._event_heap, (when, priority, seq, rank))
    """
    assert "ENG006" not in rule_ids(code, path=SIM_PATH)


def test_eng006_scoped_to_engine():
    # the trace layer itself and non-engine modules are out of scope
    code = "event = TraceEvent(0, 0.0, 1.0, 'compute')"
    assert "ENG006" not in rule_ids(code, path="src/repro/simulator/trace.py")
    assert "ENG006" not in rule_ids(code, path=ANY_PATH)


def test_eng006_engine_source_is_clean():
    with open("src/repro/simulator/engine.py") as fh:
        source = fh.read()
    assert "ENG006" not in {
        f.rule_id for f in analyze_source(source, SIM_PATH)
    }


# -- ENG008: compiled-path charging goes through the shared helpers -----------------

COMPILE_PATH = "src/repro/simulator/compile.py"
MACRO_PATH = "src/repro/simulator/macro.py"


@pytest.mark.parametrize("path", [COMPILE_PATH, MACRO_PATH])
@pytest.mark.parametrize(
    "snippet",
    [
        "cost = machine.ts + machine.tw * nwords",
        "start = clock + machine.th * hops",
        "t = machine.transfer_time(nwords, hops)",
        "busy = machine.sender_busy_time(nwords, hops)",
    ],
)
def test_eng008_flags_raw_charging_in_replay_modules(snippet, path):
    assert "ENG008" in rule_ids(snippet, path=path)


def test_eng008_allows_shared_helpers():
    code = """\
    from repro.simulator.charging import message_times, recv_wait_times

    def charge(machine, nwords, hops):
        return message_times(machine, nwords, hops)
    """
    assert "ENG008" not in rule_ids(code, path=COMPILE_PATH)


def test_eng008_scoped_to_replay_modules():
    # the generator schedulers and the charging module itself legitimately
    # read the raw machine constants
    code = "cost = machine.ts + machine.tw * nwords"
    assert "ENG008" not in rule_ids(code, path=SIM_PATH)
    assert "ENG008" not in rule_ids(code, path="src/repro/simulator/charging.py")
    assert "ENG008" not in rule_ids(code, path=ANY_PATH)


@pytest.mark.parametrize("path", [COMPILE_PATH, MACRO_PATH])
def test_eng008_replay_sources_are_clean(path):
    with open(path) as fh:
        source = fh.read()
    assert "ENG008" not in {f.rule_id for f in analyze_source(source, path)}


# -- suppressions and selection -----------------------------------------------------


def test_suppression_by_rule_id():
    code = "import time\nt = time.time()  # repro: ignore[DET002] -- host timing helper"
    assert findings(code, path=SIM_PATH) == []


def test_suppression_bare_ignores_all_rules():
    code = "import time\nt = time.time()  # repro: ignore"
    assert findings(code, path=SIM_PATH) == []


def test_suppression_of_wrong_rule_keeps_finding():
    code = "import time\nt = time.time()  # repro: ignore[DET001]"
    assert "DET002" in {f.rule_id for f in findings(code, path=SIM_PATH)}


def test_suppression_inside_string_literal_does_not_silence():
    code = 'import time\nt = time.time(); s = "# repro: ignore[DET002]"'
    assert "DET002" in {f.rule_id for f in findings(code, path=SIM_PATH)}


def test_select_and_ignore():
    code = "import random\nx = random.random()\npending = set()\nfor r in pending:\n    pass"
    assert rule_ids(code, select=["DET001"]) == {"DET001"}
    assert "DET001" not in rule_ids(code, ignore=["DET001"])
    with pytest.raises(ValueError):
        analyze_source(code, ANY_PATH, select=["NOPE99"])


def test_findings_carry_location_and_format():
    code = "import random\nx = random.random()"
    (f,) = findings(code, select=["DET001"])
    assert (f.line, f.rule_id) == (2, "DET001")
    assert "DET001" in f.format() and ANY_PATH in f.format()
