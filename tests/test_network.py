"""Tests for link routing and contention modeling."""

import numpy as np
import pytest

from conftest import rand_pair
from repro.core.machine import MachineParams
from repro.simulator.engine import Engine
from repro.simulator.network import LinkReservations, route_path
from repro.simulator.request import Recv, Send
from repro.simulator.topology import FullyConnected, Hypercube, Mesh2D

M = MachineParams(ts=10.0, tw=2.0)


class TestRoutePath:
    def test_hypercube_dimension_order(self):
        # 000 -> 011: correct bit 0 first, then bit 1
        assert route_path(Hypercube(3), 0b000, 0b011) == [0b000, 0b001, 0b011]

    def test_hypercube_same_node(self):
        assert route_path(Hypercube(3), 5, 5) == [5]

    def test_mesh_xy_routing(self):
        m = Mesh2D(4, 4, wraparound=False)
        path = route_path(m, m.rank(0, 0), m.rank(2, 2))
        assert path[0] == m.rank(0, 0) and path[-1] == m.rank(2, 2)
        # column-first then row (X-Y): second hop still in row 0
        assert path[1] == m.rank(0, 1)
        assert len(path) == 5  # 4 hops

    def test_mesh_wraparound_shortcut(self):
        m = Mesh2D(4, 4, wraparound=True)
        path = route_path(m, m.rank(0, 0), m.rank(0, 3))
        assert len(path) == 2  # one wraparound hop

    def test_fully_connected(self):
        assert route_path(FullyConnected(8), 2, 5) == [2, 5]

    def test_path_is_valid_walk(self):
        topo = Hypercube(4)
        for src, dst in ((0, 15), (3, 12), (7, 8)):
            path = route_path(topo, src, dst)
            assert len(path) == topo.distance(src, dst) + 1
            for a, b in zip(path, path[1:]):
                assert topo.distance(a, b) == 1


class TestLinkReservations:
    def test_free_link_starts_immediately(self):
        res = LinkReservations()
        assert res.earliest_start([(0, 1)], 5.0, 10.0) == 5.0

    def test_conflicting_reservation_serializes(self):
        res = LinkReservations()
        res.reserve([(0, 1)], 0.0, 10.0)
        assert res.earliest_start([(0, 1)], 0.0, 5.0) == 10.0

    def test_gap_filling(self):
        res = LinkReservations()
        res.reserve([(0, 1)], 0.0, 10.0)
        res.reserve([(0, 1)], 30.0, 10.0)
        assert res.earliest_start([(0, 1)], 0.0, 15.0) == 10.0  # fits the gap
        assert res.earliest_start([(0, 1)], 0.0, 25.0) == 40.0  # does not

    def test_multi_link_must_clear_all(self):
        res = LinkReservations()
        res.reserve([(0, 1)], 0.0, 10.0)
        res.reserve([(1, 2)], 15.0, 10.0)
        # needs both (0,1) and (1,2) free simultaneously for 6 units
        assert res.earliest_start([(0, 1), (1, 2)], 0.0, 6.0) == 25.0

    def test_directed_links_independent(self):
        res = LinkReservations()
        res.reserve([(0, 1)], 0.0, 10.0)
        assert res.earliest_start([(1, 0)], 0.0, 10.0) == 0.0

    def test_busy_time(self):
        res = LinkReservations()
        res.reserve([(0, 1)], 0.0, 10.0)
        res.reserve([(0, 1)], 20.0, 5.0)
        assert res.busy_time((0, 1)) == 15.0
        assert res.links_used == 1

    def test_zero_duration(self):
        res = LinkReservations()
        assert res.earliest_start([(0, 1)], 3.0, 0.0) == 3.0
        res.reserve([(0, 1)], 3.0, 0.0)
        assert res.links_used == 0


class TestEngineContention:
    def test_shared_link_serializes(self):
        # ranks 1 and 2 both route through link (0 -> ...)? use a path
        # collision: on a 4-node hypercube, 0->3 and 1->3 share link (1,3)
        def make_sender(src, dst):
            def prog(info):
                if info.rank == src:
                    yield Send(dst=dst, data=0, nwords=10)
                elif info.rank == dst:
                    yield Recv(src=src, tag=0)

            return prog

        def combined(info):
            # rank 0 sends to 3 (route 0->1->3), rank 1 sends to 3 (route 1->3)
            if info.rank == 0:
                yield Send(dst=3, data="a", nwords=10)
            elif info.rank == 1:
                yield Send(dst=3, data="b", nwords=10)
            elif info.rank == 3:
                yield Recv(src=0)
                yield Recv(src=1)

        free = Engine(Hypercube(2), M).run(combined)
        congested = Engine(Hypercube(2), M, link_contention=True).run(combined)
        assert congested.parallel_time > free.parallel_time

    def test_disjoint_paths_unaffected(self):
        def prog(info):
            if info.rank == 0:
                yield Send(dst=1, data=0, nwords=10)
            elif info.rank == 1:
                yield Recv(src=0)
            elif info.rank == 2:
                yield Send(dst=3, data=0, nwords=10)
            elif info.rank == 3:
                yield Recv(src=2)

        free = Engine(Hypercube(2), M).run(prog)
        congested = Engine(Hypercube(2), M, link_contention=True).run(prog)
        assert congested.parallel_time == free.parallel_time


class TestPaperAssumptionHolds:
    """The paper's conflict-free claims, verified under contention modeling."""

    def test_cannon_rolls_are_contention_free(self):
        # Gray-embedded ring rolls use disjoint single links: identical
        # times with and without link contention
        from repro.algorithms.cannon import run_cannon

        A, B = rand_pair(16, seed=1)
        topo1, topo2 = Hypercube(4), Hypercube(4)
        t_free = run_cannon(A, B, 16, M, topology=topo1).parallel_time
        eng = Engine(Hypercube(4), M, link_contention=True)
        # rebuild the same factories through the driver by monkey-free path:
        # simply rerun with a contention engine via the driver's topology
        from repro.algorithms import cannon as cannon_mod

        # driver does not expose the engine; emulate by running its program
        # set under a contending engine
        import numpy as np

        from repro.blockops.partition import BlockSpec
        from repro.algorithms.base import grid_layout

        side = 4
        layout = grid_layout(topo2, side, side, scheme="gray")
        spec = BlockSpec(16, 16, side, side)
        a_blocks = spec.scatter(A)
        b_blocks = spec.scatter(B)
        factories = [None] * 16
        for i in range(side):
            for j in range(side):
                factories[layout[i][j]] = cannon_mod.cannon_program(
                    i,
                    j,
                    a_blocks[i][(i + j) % side],
                    b_blocks[(i + j) % side][j],
                    [layout[i][c] for c in range(side)],
                    [layout[r][j] for r in range(side)],
                )
        res = eng.run(factories)
        assert res.parallel_time == t_free

    def test_recursive_doubling_contention_free_on_subcube(self):
        from repro.simulator.collectives import allgather_recursive_doubling

        group = list(range(8))

        def factory(info):
            def body():
                out = yield from allgather_recursive_doubling(
                    info, group, np.zeros(16)
                )
                return len(out)

            return body()

        t_free = Engine(Hypercube(3), M).run(factory).parallel_time
        t_cont = Engine(Hypercube(3), M, link_contention=True).run(factory).parallel_time
        assert t_cont == t_free
