"""Grid-evaluation APIs must agree exactly with their scalar counterparts.

The vectorized paths (``time_grid``/``overhead_grid``/``winner_grid``)
use the same closed-form expressions as the scalar methods, so the
comparison is for exact equality, not approximate: a drifting grid
implementation would silently relabel region-map cells.
"""

import numpy as np
import pytest

from repro.core.machine import FUTURE_MIMD, NCUBE2_LIKE, SIMD_CM2_LIKE, MachineParams
from repro.core.models import COMPARISON_MODELS, MODELS
from repro.core.regions import best_algorithm, region_map, winner_grid

MACHINES = (NCUBE2_LIKE, FUTURE_MIMD, SIMD_CM2_LIKE, MachineParams(ts=7.5, tw=0.25))
N_SAMPLES = (2.0, 8.0, 64.0, 513.0, 4096.0, 1e6)
P_SAMPLES = (1.0, 4.0, 64.0, 1000.0, 2**20, 1e9)


@pytest.mark.parametrize("key", sorted(MODELS))
@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
class TestScalarGridEquality:
    def test_time_grid_matches_scalar(self, key, machine):
        model = MODELS[key]
        grid = model.time_grid(
            np.asarray(N_SAMPLES)[:, None], np.asarray(P_SAMPLES)[None, :], machine
        )
        grid = np.broadcast_to(grid, (len(N_SAMPLES), len(P_SAMPLES)))
        for i, n in enumerate(N_SAMPLES):
            for j, p in enumerate(P_SAMPLES):
                assert grid[i, j] == model.time(n, p, machine), (key, n, p)

    def test_overhead_grid_matches_scalar(self, key, machine):
        model = MODELS[key]
        grid = model.overhead_grid(
            np.asarray(N_SAMPLES)[:, None], np.asarray(P_SAMPLES)[None, :], machine
        )
        grid = np.broadcast_to(grid, (len(N_SAMPLES), len(P_SAMPLES)))
        for i, n in enumerate(N_SAMPLES):
            for j, p in enumerate(P_SAMPLES):
                assert grid[i, j] == model.overhead(n, p, machine), (key, n, p)

    def test_applicable_grid_matches_scalar(self, key, machine):
        model = MODELS[key]
        grid = np.broadcast_to(
            model.applicable_grid(np.asarray(N_SAMPLES)[:, None], np.asarray(P_SAMPLES)[None, :]),
            (len(N_SAMPLES), len(P_SAMPLES)),
        )
        for i, n in enumerate(N_SAMPLES):
            for j, p in enumerate(P_SAMPLES):
                assert bool(grid[i, j]) == model.applicable(n, p), (key, n, p)


class TestGridDerivedMetrics:
    def test_efficiency_and_speedup_grids(self):
        model = MODELS["cannon"]
        machine = NCUBE2_LIKE
        ns = np.asarray([16.0, 64.0, 256.0])
        ps = np.asarray([4.0, 16.0, 64.0])
        eff = model.efficiency_grid(ns[:, None], ps[None, :], machine)
        spd = model.speedup_grid(ns[:, None], ps[None, :], machine)
        for i, n in enumerate(ns):
            for j, p in enumerate(ps):
                assert eff[i, j] == model.efficiency(n, p, machine)
                assert spd[i, j] == model.speedup(n, p, machine)

    def test_scalar_entry_points_still_scalar(self):
        model = MODELS["gk"]
        assert isinstance(model.time(64, 64, NCUBE2_LIKE), float)
        assert isinstance(model.overhead(64, 64, NCUBE2_LIKE), float)

    def test_grid_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MODELS["cannon"].time_grid(np.asarray([4.0, 0.0]), 4.0, NCUBE2_LIKE)


@pytest.mark.parametrize("machine", MACHINES[:3], ids=lambda m: m.name)
class TestWinnerGrid:
    def test_matches_best_algorithm_cell_for_cell(self, machine):
        n_values = tuple(float(2**k) for k in range(0, 17, 2))
        p_values = tuple(float(2**k) for k in range(0, 31, 2))
        winners = winner_grid(machine, n_values, p_values)
        labels = tuple(COMPARISON_MODELS) + ("x",)
        for i, n in enumerate(n_values):
            for j, p in enumerate(p_values):
                assert labels[winners[i, j]] == best_algorithm(n, p, machine), (n, p)

    def test_region_map_uses_winner_grid(self, machine):
        rmap = region_map(machine, log2_p_max=12, log2_n_max=8, cache=False)
        for i, n in enumerate(rmap.n_values):
            for j, p in enumerate(rmap.p_values):
                assert rmap.cells[i][j] == best_algorithm(n, p, machine)


class TestRegionMapCache:
    def test_cached_instance_reused(self):
        from repro.core.cache import result_cache

        result_cache().clear()
        m1 = region_map(NCUBE2_LIKE, log2_p_max=10, log2_n_max=6)
        m2 = region_map(NCUBE2_LIKE, log2_p_max=10, log2_n_max=6)
        assert m2 is m1
        # a different grid or machine is a different entry
        m3 = region_map(NCUBE2_LIKE, log2_p_max=10, log2_n_max=7)
        assert m3 is not m1
        m4 = region_map(FUTURE_MIMD, log2_p_max=10, log2_n_max=6)
        assert m4 is not m1

    def test_cache_false_bypasses(self):
        m1 = region_map(NCUBE2_LIKE, log2_p_max=10, log2_n_max=6)
        m2 = region_map(NCUBE2_LIKE, log2_p_max=10, log2_n_max=6, cache=False)
        assert m2 is not m1
        assert m2 == m1
