"""Tests for the region-of-superiority maps (Section 6, Figures 1-3)."""

import pytest

from repro.core.machine import FUTURE_MIMD, NCUBE2_LIKE, SIMD_CM2_LIKE
from repro.core.regions import LETTER_OF, best_algorithm, region_map


class TestBestAlgorithm:
    def test_infeasible_region(self):
        # p > n^3: nothing applies
        assert best_algorithm(4, 100, NCUBE2_LIKE) == "x"

    def test_winner_is_applicable(self):
        from repro.core.models import MODELS

        for n, p in ((64, 16), (64, 512), (16, 512), (1024, 2**20)):
            key = best_algorithm(n, p, NCUBE2_LIKE)
            if key != "x":
                assert MODELS[key].applicable(n, p)

    def test_winner_has_min_overhead(self):
        from repro.core.models import COMPARISON_MODELS, MODELS

        n, p = 256, 4096
        key = best_algorithm(n, p, NCUBE2_LIKE)
        win = MODELS[key].overhead(n, p, NCUBE2_LIKE)
        for other in COMPARISON_MODELS:
            if MODELS[other].applicable(n, p):
                assert win <= MODELS[other].overhead(n, p, NCUBE2_LIKE)

    def test_berntsen_region_below_n_to_1_5(self):
        # Figures 1-3 all show b below the p = n^(3/2) line at moderate sizes
        for mach in (NCUBE2_LIKE, FUTURE_MIMD, SIMD_CM2_LIKE):
            assert best_algorithm(256, 256, mach) == "berntsen"

    def test_fig1_gk_above_concurrency_line(self):
        # ts=150: GK is the best choice for p > n^(3/2) (Section 6, Figure 1)
        assert best_algorithm(64, 4096, NCUBE2_LIKE) == "gk"
        assert best_algorithm(128, 2**16, NCUBE2_LIKE) == "gk"

    def test_fig3_dns_region(self):
        # ts=0.5: DNS best for n^2 <= p <= n^3 at practical sizes
        assert best_algorithm(64, 2**14, SIMD_CM2_LIKE) == "dns"

    def test_fig3_cannon_region(self):
        # ts=0.5: Cannon best for n^(3/2) <= p <= n^2
        assert best_algorithm(256, 2**13, SIMD_CM2_LIKE) == "cannon"


class TestTieBreaking:
    """Exact overhead ties are deterministic: earliest key in model_keys wins.

    A zero-communication machine makes every applicable model's overhead
    exactly 0.0, turning the whole feasible plane into ties — the
    scalar, dense, and scattered implementations must all pick the first
    applicable model, in the same order.
    """

    def test_tie_goes_to_earliest_applicable_model(self, zero_comm):
        from repro.core.models import COMPARISON_MODELS, MODELS

        for n, p in ((256, 256), (64, 4096), (16, 4096), (1024, 4)):
            expected = next(
                (k for k in COMPARISON_MODELS if MODELS[k].applicable(n, p)), "x"
            )
            assert best_algorithm(n, p, zero_comm) == expected

    def test_dense_and_scattered_grids_agree_on_ties(self, zero_comm):
        import numpy as np

        from repro.core.models import COMPARISON_MODELS
        from repro.core.refine import refine_winner_grid, winner_at_points
        from repro.core.regions import winner_grid

        n_values = tuple(float(2**k) for k in range(0, 13))
        p_values = tuple(float(2**k) for k in range(0, 17))
        d = winner_grid(zero_comm, n_values, p_values)
        scalar = np.array(
            [
                [
                    (*COMPARISON_MODELS, "x").index(best_algorithm(n, p, zero_comm))
                    for p in p_values
                ]
                for n in n_values
            ]
        )
        np.testing.assert_array_equal(d, scalar)
        w, _ = winner_at_points(
            zero_comm,
            np.asarray(n_values)[:, None],
            np.asarray(p_values)[None, :],
        )
        np.testing.assert_array_equal(w, d)
        ref = refine_winner_grid(zero_comm, n_values, p_values)
        np.testing.assert_array_equal(ref.winners, d)

    def test_model_keys_order_decides_the_tie(self, zero_comm):
        # berntsen and cannon tie at (256, 256); whichever is listed
        # first must win
        assert best_algorithm(256, 256, zero_comm, ("berntsen", "cannon")) == "berntsen"
        assert best_algorithm(256, 256, zero_comm, ("cannon", "berntsen")) == "cannon"


class TestRegionMap:
    def test_grid_dimensions(self):
        rm = region_map(NCUBE2_LIKE, log2_p_max=10, log2_n_max=6, p_step=2, n_step=2)
        assert len(rm.n_values) == 4
        assert len(rm.p_values) == 6
        assert len(rm.cells) == 4 and len(rm.cells[0]) == 6

    def test_letters(self):
        assert LETTER_OF == {"gk": "a", "berntsen": "b", "cannon": "c", "dns": "d"}
        rm = region_map(SIMD_CM2_LIKE, log2_p_max=12, log2_n_max=8, p_step=2, n_step=2)
        letters = {c for row in rm.letter_grid() for c in row}
        assert letters <= {"a", "b", "c", "d", "x"}

    def test_fractions_sum_to_one(self):
        rm = region_map(NCUBE2_LIKE, log2_p_max=16, log2_n_max=10, p_step=2, n_step=2)
        assert sum(rm.fraction(k) for k in rm.winners()) == pytest.approx(1.0)

    def test_fig2_all_four_regions_present(self):
        # Section 6 on Figure 2: "each of the four algorithms performs
        # better than the rest in some region ... practical values"
        rm = region_map(FUTURE_MIMD, log2_p_max=30, log2_n_max=16)
        assert {"gk", "berntsen", "cannon", "dns"} <= rm.winners()

    def test_fig1_dns_impractical(self):
        # Figure 1 (ts=150): DNS wins nothing at practical sizes
        rm = region_map(NCUBE2_LIKE, log2_p_max=18, log2_n_max=12)
        assert "dns" not in rm.winners()

    def test_x_region_is_top_left(self):
        rm = region_map(NCUBE2_LIKE, log2_p_max=20, log2_n_max=4)
        # smallest n, largest p must be infeasible
        assert rm.cells[0][-1] == "x"

    def test_render_smoke(self):
        rm = region_map(NCUBE2_LIKE, log2_p_max=8, log2_n_max=4, p_step=2, n_step=2)
        text = rm.render()
        assert "ts=150" in text
        assert "n=2^" in text
