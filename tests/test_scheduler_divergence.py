"""Cross-scheduler equivalence on the paper's CM-5 configurations.

The fuzz suite (``test_engine_fuzz.py``) checks ready-vs-rescan
equivalence on random schedules; this file pins it on the *real*
workloads the paper's Section 9 figures are built from — GK and Cannon
on the fully connected CM-5 model at the Figure 4 (``p = 64``) and
Figure 5 (``p = 512`` / ``p = 484``) processor counts.  Every observable
``SimResult`` field must be bit-identical: ``T_p``, every per-rank
stats account, message/word conservation, and the computed product.

Each configuration runs with the macro-collective fast path both off
and forced on (``MACRO_GROUP_MIN`` pinned to 2, so even the figures'
small row/column groups take the macro executors): the ready scheduler
with macro collectives must match the rescan reference — which always
simulates message level — exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.simulator.collectives as collectives_mod
import repro.simulator.engine as engine_mod
from repro.algorithms.cannon import run_cannon
from repro.algorithms.gk import run_gk_cm5
from repro.core.machine import CM5
from repro.simulator.topology import FullyConnected

#: (figure, algorithm, n, p) — matrix sizes drawn from the figures'
#: plotted ranges, including each figure's crossover neighborhood.
CM5_CONFIGS = [
    ("fig4", "gk", 8, 64),
    ("fig4", "gk", 64, 64),
    ("fig4", "gk", 96, 64),
    ("fig4", "cannon", 8, 64),
    ("fig4", "cannon", 64, 64),
    ("fig4", "cannon", 96, 64),
    ("fig5", "gk", 44, 512),
    ("fig5", "gk", 110, 512),
    ("fig5", "cannon", 44, 484),
    ("fig5", "cannon", 110, 484),
]


def _run(algorithm: str, n: int, p: int, scheduler: str, macro: bool, monkeypatch):
    """One figure point under the given engine scheduler.

    The process-wide default is flipped the same way
    ``benchmarks/perf_guard.py`` does (the engine's contract is that the
    choice is unobservable; the drivers' ``scheduler=`` kwarg covers
    explicit selection elsewhere).  With *macro*, the group-size cutoff
    is pinned to 2 so the figures' row/column groups (8–64 ranks) take
    the macro executors.
    """
    monkeypatch.setattr(engine_mod, "DEFAULT_SCHEDULER", scheduler)
    monkeypatch.setattr(engine_mod, "DEFAULT_MACRO_COLLECTIVES", macro)
    if macro:
        monkeypatch.setattr(collectives_mod, "MACRO_GROUP_MIN", 2)
    rng = np.random.default_rng((0, n))
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    if algorithm == "gk":
        return run_gk_cm5(A, B, p, machine=CM5)
    return run_cannon(A, B, p, machine=CM5, topology=FullyConnected(p))


@pytest.mark.parametrize("scheduler", ["ready", "heap"])
@pytest.mark.parametrize("macro", [False, True], ids=["message-level", "macro"])
@pytest.mark.parametrize("figure,algorithm,n,p", CM5_CONFIGS)
def test_ready_and_rescan_identical_on_cm5_configs(
    figure, algorithm, n, p, macro, scheduler, monkeypatch
):
    ready = _run(algorithm, n, p, scheduler, macro, monkeypatch)
    # the rescan reference always simulates message level (the engine
    # rejects macro requests there), so with macro=True this pins the
    # fast path against the reference on the real figure workloads
    rescan = _run(algorithm, n, p, "rescan", False, monkeypatch)

    # headline number: T_p bit-identical, not approximately equal
    assert ready.parallel_time == rescan.parallel_time
    assert ready.sim.nprocs == rescan.sim.nprocs == p

    # every per-rank account, field for field
    assert len(ready.sim.stats) == p
    for s_ready, s_rescan in zip(ready.sim.stats, rescan.sim.stats):
        assert s_ready == s_rescan, f"rank {s_ready.rank} stats diverge"

    # conservation totals and the derived Section-2 metrics
    work = float(n) ** 3
    assert ready.sim.total_messages == rescan.sim.total_messages
    assert ready.sim.total_words == rescan.sim.total_words
    assert ready.sim.speedup(work) == rescan.sim.speedup(work)
    assert ready.sim.efficiency(work) == rescan.sim.efficiency(work)
    assert ready.sim.total_overhead(work) == rescan.sim.total_overhead(work)

    # the product itself: bit-identical under both schedulers, and correct
    assert np.array_equal(ready.C, rescan.C)
    rng = np.random.default_rng((0, n))
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    np.testing.assert_allclose(ready.C, A @ B, atol=1e-8 * n)


def test_scheduler_default_is_ready():
    """The fast path is the default; rescan stays the reference."""
    assert engine_mod.DEFAULT_SCHEDULER == "ready"
    assert engine_mod.SCHEDULERS == ("ready", "rescan", "heap", "compiled")
