"""Tests for the large-message broadcast schemes (paper §5.4.1)."""

import math

import numpy as np
import pytest

from repro.core.machine import MachineParams
from repro.simulator.errors import ProgramError
from repro.simulator.engine import run_spmd
from repro.simulator.jho import (
    bcast_pipelined_binomial,
    bcast_scatter_allgather,
    jho_broadcast_time,
    optimal_packet_words,
)
from repro.simulator.topology import Hypercube

MACHINE = MachineParams(ts=10.0, tw=2.0)


def run_bcast(p, scheme, data_shape, root=0, machine=MACHINE, **kw):
    group = list(range(p))
    payload = np.arange(float(np.prod(data_shape))).reshape(data_shape)

    def factory(info):
        def body():
            out = yield from scheme(
                info, group, root, payload if info.rank == group[root] else None, **kw
            )
            return out

        return body()

    res = run_spmd(Hypercube.of_size(p), machine, factory)
    return res, payload


class TestOptimalPacket:
    def test_formula(self):
        # s* = sqrt(ts*m / (tw*log p))
        assert optimal_packet_words(256, 8, 150.0, 3.0) == int(
            math.sqrt(150 * 256 / (3 * 3))
        )

    def test_at_least_one_word(self):
        assert optimal_packet_words(1, 1024, 0.001, 10.0) == 1

    def test_tw_zero(self):
        assert optimal_packet_words(64, 8, 1.0, 0.0) == 64

    def test_jho_time_monotone_in_m(self):
        ts, tw = 50.0, 2.0
        times = [jho_broadcast_time(m, 64, ts, tw) for m in (16, 64, 256, 1024)]
        assert times == sorted(times)

    def test_jho_time_trivial_group(self):
        assert jho_broadcast_time(100, 1, 10.0, 2.0) == 0.0


class TestScatterAllgather:
    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    @pytest.mark.parametrize("shape", [(8, 8), (16,), (5, 3)])
    def test_delivers_exact_copy(self, p, shape):
        res, payload = run_bcast(p, bcast_scatter_allgather, shape)
        for out in res.returns:
            assert out.shape == payload.shape
            assert np.array_equal(out, payload)

    def test_nonzero_root(self):
        res, payload = run_bcast(4, bcast_scatter_allgather, (6, 6), root=2)
        assert all(np.array_equal(out, payload) for out in res.returns)

    def test_group_of_one(self):
        res, payload = run_bcast(1, bcast_scatter_allgather, (4, 4))
        assert np.array_equal(res.returns[0], payload)

    def test_non_power_of_two_rejected(self):
        group = [0, 1, 2]

        def factory(info):
            def body():
                yield from bcast_scatter_allgather(info, group, 0, np.zeros(4))

            return body()

        with pytest.raises(ProgramError):
            run_spmd(Hypercube(2), MACHINE, lambda i: factory(i) if i.rank < 3 else iter(()))

    def test_cost_beats_binomial_for_large_messages(self):
        from repro.simulator.collectives import bcast_binomial

        p, m = 16, 4096
        res_sag, _ = run_bcast(p, bcast_scatter_allgather, (m,))
        res_bin, _ = run_bcast(p, bcast_binomial, (m,))
        # ~2(ts log p + tw m) vs (ts + tw m) log p: a ~2x win at log p = 4
        assert res_sag.parallel_time < res_bin.parallel_time
        assert res_sag.parallel_time < 0.7 * res_bin.parallel_time

    def test_cost_close_to_leading_terms(self):
        p, m = 8, 1024
        res, _ = run_bcast(p, bcast_scatter_allgather, (m,))
        lead = 2 * MACHINE.ts * math.log2(p) + 2 * MACHINE.tw * m * (1 - 1 / p)
        assert res.parallel_time == pytest.approx(lead, rel=0.35)


class TestPipelinedBinomial:
    @pytest.mark.parametrize("p", [2, 4, 8])
    @pytest.mark.parametrize("shape", [(8, 8), (33,)])
    def test_delivers_exact_copy(self, p, shape):
        res, payload = run_bcast(p, bcast_pipelined_binomial, shape)
        for out in res.returns:
            assert np.array_equal(out, payload)

    def test_explicit_packet_size(self):
        res, payload = run_bcast(8, bcast_pipelined_binomial, (64,), packet_words=7)
        assert all(np.array_equal(out, payload) for out in res.returns)

    def test_allport_approaches_jho_bound(self):
        # with all-port forwarding and the optimal packet size, the measured
        # time lands near the Johnsson-Ho expression
        p, m = 16, 8192
        machine = MACHINE.with_(all_port=True)
        res, _ = run_bcast(p, bcast_pipelined_binomial, (m,), machine=machine)
        bound = jho_broadcast_time(m, p, machine.ts, machine.tw)
        assert res.parallel_time == pytest.approx(bound, rel=0.30)

    def test_allport_beats_binomial_large_messages(self):
        from repro.simulator.collectives import bcast_binomial

        p, m = 16, 8192
        machine = MACHINE.with_(all_port=True)
        res_pipe, _ = run_bcast(p, bcast_pipelined_binomial, (m,), machine=machine)
        res_bin, _ = run_bcast(p, bcast_binomial, (m,), machine=machine)
        assert res_pipe.parallel_time < res_bin.parallel_time

    def test_one_port_degrades(self):
        # Section 7's distinction: without simultaneous ports the pipelined
        # scheme loses its advantage over the naive broadcast
        from repro.simulator.collectives import bcast_binomial

        p, m = 16, 512
        res_pipe, _ = run_bcast(p, bcast_pipelined_binomial, (m,))
        res_bin, _ = run_bcast(p, bcast_binomial, (m,))
        assert res_pipe.parallel_time > 0.8 * res_bin.parallel_time


class TestImprovedGKVariant:
    def test_all_schemes_correct(self):
        from repro.algorithms.gk import run_gk

        rng = np.random.default_rng(0)
        n = 32
        A, B = rng.standard_normal((n, n)), rng.standard_normal((n, n))
        for scheme in ("binomial", "scatter-allgather", "pipelined"):
            res = run_gk(A, B, 64, MACHINE, broadcast=scheme)
            assert np.allclose(res.C, A @ B), scheme

    def test_improved_wins_large_blocks(self):
        from repro.algorithms.gk import run_gk

        rng = np.random.default_rng(1)
        n = 128  # blocks of 32x32 = 1024 words on a 4^3 cube
        A, B = rng.standard_normal((n, n)), rng.standard_normal((n, n))
        machine = MachineParams(ts=150.0, tw=3.0)
        t_naive = run_gk(A, B, 64, machine, broadcast="binomial").parallel_time
        t_improved = run_gk(A, B, 64, machine, broadcast="scatter-allgather").parallel_time
        assert t_improved < t_naive

    def test_bad_scheme_rejected(self):
        from repro.algorithms.gk import run_gk

        rng = np.random.default_rng(1)
        A = rng.standard_normal((8, 8))
        with pytest.raises(ValueError):
            run_gk(A, A, 8, MACHINE, broadcast="carrier-pigeon")
