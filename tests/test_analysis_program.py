"""Whole-program model tests: symbol tables, call resolution, call graph."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.callgraph import build_call_graph
from repro.analysis.core import ModuleSource
from repro.analysis.program import (
    DEFAULT_MACHINE_FIELDS,
    Program,
    module_name_for,
)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def _module(text: str, path: str = "mod.py") -> ModuleSource:
    return ModuleSource(path, textwrap.dedent(text))


# -- module naming ------------------------------------------------------------------


def test_module_name_for_real_package_files():
    assert module_name_for(SRC / "simulator" / "engine.py") == "repro.simulator.engine"
    assert module_name_for(SRC / "core" / "machine.py") == "repro.core.machine"
    assert module_name_for(SRC / "analysis" / "__init__.py") == "repro.analysis"


def test_module_name_for_non_package_paths_fall_back_to_stem(tmp_path):
    loose = tmp_path / "probe.py"
    loose.write_text("x = 1\n")
    assert module_name_for(loose) == "probe"
    assert module_name_for("<string>") == "<string>"


def test_module_name_for_synthetic_package(tmp_path):
    pkg = tmp_path / "pkg" / "sub"
    pkg.mkdir(parents=True)
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    target = pkg / "leaf.py"
    target.write_text("x = 1\n")
    assert module_name_for(target) == "pkg.sub.leaf"


# -- symbol tables ------------------------------------------------------------------


def test_symbol_table_indexes_functions_methods_and_nested_defs():
    program = Program([_module(
        """
        X = 1

        def top():
            def inner():
                pass

        class Cls:
            def meth(self):
                pass
        """
    )])
    mod = program.modules["mod"]
    assert set(mod.functions) == {"top", "top.inner", "Cls.meth"}
    assert mod.functions["Cls.meth"].cls is mod.classes["Cls"]
    assert mod.functions["top"].qualname == "mod.top"
    assert "X" in mod.globals


def test_symbol_table_descends_into_conditional_blocks():
    program = Program([_module(
        """
        try:
            def fallback():
                pass
        except ImportError:
            pass

        if True:
            class Guarded:
                def meth(self):
                    pass
        """
    )])
    mod = program.modules["mod"]
    assert "fallback" in mod.functions
    assert "Guarded.meth" in mod.functions


def test_name_collisions_fall_back_to_path_keys():
    a = _module("def f(): pass\n", path="a/mod.py")
    b = _module("def g(): pass\n", path="b/mod.py")
    program = Program([a, b])
    assert len(program.modules) == 2
    assert {f.node.name for f in program.iter_functions()} == {"f", "g"}


# -- call resolution ----------------------------------------------------------------


def test_resolve_call_through_import_map():
    program = Program([_module(
        """
        import numpy as np
        from os.path import join as pjoin

        def use():
            np.random.default_rng()
            pjoin("a", "b")
        """
    )])
    mod = program.modules["mod"]
    fn = mod.functions["use"].node
    calls = {}
    import ast
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            calls[ast.unparse(node.func)] = program.resolve_call(mod, node.func)
    assert calls["np.random.default_rng"] == "numpy.random.default_rng"
    assert calls["pjoin"] == "os.path.join"


def test_resolve_call_self_method_and_module_local():
    program = Program([_module(
        """
        def helper():
            pass

        class Engine:
            def _schedule(self):
                pass
            def run(self):
                self._schedule()
                helper()
        """
    )])
    mod = program.modules["mod"]
    import ast
    run = mod.functions["Engine.run"]
    resolved = {
        program.resolve_call(mod, node.func, cls=run.cls)
        for node in ast.walk(run.node)
        if isinstance(node, ast.Call)
    }
    assert resolved == {"mod.Engine._schedule", "mod.helper"}


# -- call graph ---------------------------------------------------------------------


def test_call_graph_edges_and_reachability():
    program = Program([_module(
        """
        def a():
            b()

        def b():
            c()

        def c():
            pass
        """
    )])
    graph = build_call_graph(program)
    assert "mod.b" in graph.callees("mod.a")
    assert graph.callers("mod.c") == {"mod.b"}
    assert graph.reachable_from("mod.a") == {"mod.b", "mod.c"}


def test_call_graph_excludes_nested_function_bodies():
    program = Program([_module(
        """
        def outer():
            def inner():
                target()
        def target():
            pass
        """
    )])
    graph = build_call_graph(program)
    assert "mod.target" not in graph.callees("mod.outer")
    assert "mod.target" in graph.callees("mod.outer.inner")


def test_call_graph_over_real_tree_resolves_engine_schedule():
    sources = [
        ModuleSource(p, p.read_text())
        for p in sorted((SRC / "simulator").glob("*.py"))
    ]
    program = Program(sources)
    graph = build_call_graph(program)
    assert len(graph) > 100
    # the heap scheduler family all feed the single insertion point
    callers = graph.callers("repro.simulator.engine.Engine._schedule")
    assert any("run_heap" in c for c in callers)


# -- MachineParams discovery --------------------------------------------------------


def test_machine_param_fields_discovered_from_real_tree():
    src = SRC / "core" / "machine.py"
    program = Program([ModuleSource(src, src.read_text())])
    fields = program.machine_param_fields()
    assert set(DEFAULT_MACHINE_FIELDS) <= set(fields)


def test_machine_param_fields_fall_back_without_the_class():
    program = Program([_module("x = 1\n")])
    assert program.machine_param_fields() == DEFAULT_MACHINE_FIELDS
