"""Tests for the equal-overhead crossover analysis (Section 6)."""

import math

import pytest

from repro.core.crossover import (
    cannon_gk_closed_form,
    crossover_curve,
    dns_beats_gk_max_procs,
    equal_overhead_n,
    gk_cannon_tw_cutoff,
)
from repro.core.machine import CM5, NCUBE2_LIKE, MachineParams
from repro.core.models import MODELS


class TestEqualOverhead:
    def test_crossover_is_a_root(self):
        p = 1024.0
        n = equal_overhead_n("gk", "cannon", p, NCUBE2_LIKE)
        assert n is not None
        a = MODELS["gk"].overhead(n, p, NCUBE2_LIKE)
        b = MODELS["cannon"].overhead(n, p, NCUBE2_LIKE)
        assert a == pytest.approx(b, rel=1e-9)

    def test_sides_of_crossover(self):
        p = 1024.0
        n = equal_overhead_n("gk", "cannon", p, NCUBE2_LIKE)
        gk, cn = MODELS["gk"], MODELS["cannon"]
        # GK wins below the crossover, Cannon above (Section 6)
        assert gk.overhead(n / 2, p, NCUBE2_LIKE) < cn.overhead(n / 2, p, NCUBE2_LIKE)
        assert gk.overhead(n * 2, p, NCUBE2_LIKE) > cn.overhead(n * 2, p, NCUBE2_LIKE)

    def test_none_when_dominated(self):
        # Berntsen's overhead is below Cannon's for every n at moderate p
        assert equal_overhead_n("berntsen", "cannon", 64.0, NCUBE2_LIKE) is None

    def test_accepts_model_instances(self):
        n = equal_overhead_n(MODELS["gk"], MODELS["cannon"], 256.0, NCUBE2_LIKE)
        assert n is not None and n > 0


class TestClosedForm:
    @pytest.mark.parametrize("log2p", [8, 12, 16, 20])
    def test_matches_numeric(self, log2p):
        p = 2.0**log2p
        closed = cannon_gk_closed_form(p, NCUBE2_LIKE)
        numeric = equal_overhead_n("gk", "cannon", p, NCUBE2_LIKE)
        assert closed is not None and numeric is not None
        assert closed == pytest.approx(numeric, rel=1e-6)

    def test_none_beyond_tw_cutoff(self):
        # beyond ~1.3e8 processors the GK tw term is smaller for every n,
        # so Eq. 15 has no positive solution
        assert cannon_gk_closed_form(2.0**28, NCUBE2_LIKE) is None


class TestPaperConstants:
    def test_tw_cutoff_130_million(self):
        cutoff = gk_cannon_tw_cutoff()
        assert 1.0e8 < cutoff < 1.6e8  # paper: "130 million"

    def test_cutoff_is_a_root(self):
        p = gk_cannon_tw_cutoff()
        assert 2 * math.sqrt(p) == pytest.approx((5 / 3) * p ** (1 / 3) * math.log2(p), rel=1e-9)

    def test_fig4_prediction(self):
        n = equal_overhead_n("gk-cm5", "cannon", 64.0, CM5)
        assert n == pytest.approx(83, abs=2)  # paper: n = 83

    def test_fig5_prediction(self):
        n = equal_overhead_n("gk-cm5", "cannon", 512.0, CM5)
        assert n == pytest.approx(295, abs=10)  # paper: n ~ 295


class TestDNSvsGK:
    def test_dns_loses_at_small_p(self):
        m = MachineParams(ts=30.0, tw=3.0)
        p_first = dns_beats_gk_max_procs(m)
        assert p_first > 8  # DNS never competitive at tiny machines

    def test_dns_win_band_exists_at_large_p(self):
        m = MachineParams(ts=30.0, tw=3.0)
        p_first = dns_beats_gk_max_procs(m)
        assert math.isfinite(p_first)
        # just above the threshold, a winning n exists inside the strip
        from repro.core.crossover import _dns_wins_somewhere

        assert _dns_wins_somewhere(p_first * 1.1, m)
        assert not _dns_wins_somewhere(p_first * 0.9, m)

    def test_higher_ts_delays_dns(self):
        # larger startup hurts GK less than DNS's log term? No - the other
        # way: DNS carries (ts+tw) on everything, so bigger ts delays its win
        first_low = dns_beats_gk_max_procs(MachineParams(ts=0.5, tw=3.0))
        first_high = dns_beats_gk_max_procs(MachineParams(ts=150.0, tw=3.0))
        assert first_high > first_low


class TestCurve:
    def test_crossover_curve_shape(self):
        pts = crossover_curve("gk", "cannon", NCUBE2_LIKE, [64.0, 1024.0, 2.0**20])
        assert len(pts) == 3
        assert all(p > 0 for p, _ in pts)
        # crossover n grows with p in this regime
        ns = [n for _, n in pts if n is not None]
        assert ns == sorted(ns)
