"""Tests for calibration and performance prediction (Section 3 workflow)."""

import numpy as np
import pytest

from conftest import rand_pair
from repro.algorithms.cannon import run_cannon
from repro.algorithms.gk import run_gk
from repro.core.machine import MachineParams
from repro.core.models import MODELS
from repro.core.prediction import (
    TimingSample,
    calibrate,
    fit_machine_params,
    predict,
)

TRUE = MachineParams(ts=42.0, tw=1.7)


def _model_samples(key, configs, machine=TRUE):
    model = MODELS[key]
    return [
        TimingSample(n=n, p=p, parallel_time=model.time(n, p, machine))
        for n, p in configs
    ]


class TestFit:
    def test_recovers_exact_params_from_model_times(self):
        samples = _model_samples("cannon", [(32, 16), (64, 16), (64, 64)])
        fitted = fit_machine_params("cannon", samples)
        assert fitted.ts == pytest.approx(TRUE.ts, rel=1e-9)
        assert fitted.tw == pytest.approx(TRUE.tw, rel=1e-9)

    def test_works_for_every_model(self):
        for key in ("simple", "cannon", "fox", "berntsen", "gk", "gk-cm5"):
            configs = [(32, 16), (64, 16), (128, 64)]
            if key == "berntsen":
                configs = [(32, 8), (64, 8), (128, 64)]
            samples = _model_samples(key, configs)
            fitted = fit_machine_params(key, samples)
            assert fitted.ts == pytest.approx(TRUE.ts, rel=1e-6)
            assert fitted.tw == pytest.approx(TRUE.tw, rel=1e-6)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            fit_machine_params("cannon", _model_samples("cannon", [(32, 16)]))

    def test_degenerate_samples_rejected(self):
        # identical (n, p) twice: rank-deficient design
        with pytest.raises(ValueError):
            fit_machine_params("cannon", _model_samples("cannon", [(32, 16), (32, 16)]))

    def test_estimates_clipped_nonnegative(self):
        # nonsense timings (faster than compute alone) clip to ts=tw=0
        samples = [
            TimingSample(32, 16, 32**3 / 16 * 0.5),
            TimingSample(64, 16, 64**3 / 16 * 0.5),
            TimingSample(64, 64, 64**3 / 64 * 0.5),
        ]
        fitted = fit_machine_params("cannon", samples)
        assert fitted.ts >= 0 and fitted.tw >= 0


class TestPredict:
    def test_consistent_with_model(self):
        out = predict("cannon", 64, 16, TRUE)
        assert out["parallel_time"] == pytest.approx(MODELS["cannon"].time(64, 16, TRUE))
        assert out["efficiency"] == pytest.approx(
            MODELS["cannon"].efficiency(64, 16, TRUE)
        )
        assert out["speedup"] == pytest.approx(out["efficiency"] * 16)


class TestCalibrateOnSimulator:
    def test_small_p_calibration_predicts_large_p_cannon(self):
        # the Section 3 claim: measure at p in {4, 16}, predict p = 64
        machine = MachineParams(ts=80.0, tw=2.5)
        fitted = calibrate("cannon", machine, [(16, 4), (32, 4), (32, 16), (48, 16)])
        A, B = rand_pair(64, seed=9)
        measured = run_cannon(A, B, 64, machine).parallel_time
        predicted = predict("cannon", 64, 64, fitted)["parallel_time"]
        assert predicted == pytest.approx(measured, rel=0.10)

    def test_small_p_calibration_predicts_large_p_gk(self):
        machine = MachineParams(ts=80.0, tw=2.5)
        fitted = calibrate("gk", machine, [(16, 8), (32, 8), (32, 64), (48, 64)])
        A, B = rand_pair(64, seed=9)
        measured = run_gk(A, B, 512, machine).parallel_time
        predicted = predict("gk", 64, 512, fitted)["parallel_time"]
        assert predicted == pytest.approx(measured, rel=0.25)

    def test_fitted_constants_absorb_overlap(self):
        # the simulator overlaps phases, so the fitted effective constants
        # come in at or below the machine's nominal ones
        machine = MachineParams(ts=100.0, tw=3.0)
        fitted = calibrate("gk", machine, [(16, 8), (32, 8), (32, 64), (48, 64)])
        assert fitted.ts <= machine.ts * 1.05
        assert fitted.tw <= machine.tw * 1.2
