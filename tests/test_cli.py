"""Tests for the top-level command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestRun:
    def test_run_cannon(self, capsys):
        assert main(["run", "cannon", "-n", "16", "-p", "16"]) == 0
        out = capsys.readouterr().out
        assert "numerically correct : True" in out.replace("  ", " ").replace(
            "numerically correct        :", "numerically correct :"
        ) or "True" in out
        assert "T_p" in out

    def test_run_gk(self, capsys):
        assert main(["run", "gk", "-n", "16", "-p", "8"]) == 0
        assert "GK" in capsys.readouterr().out

    def test_run_infeasible_instance(self):
        with pytest.raises(SystemExit):
            main(["run", "cannon", "-n", "4", "-p", "64"])

    def test_run_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["run", "strassen", "-n", "16", "-p", "16"])

    def test_machine_overrides(self, capsys):
        assert main(["run", "cannon", "-n", "16", "-p", "16", "--ts", "0", "--tw", "0"]) == 0
        out = capsys.readouterr().out
        assert "efficiency" in out


class TestSelect:
    def test_select(self, capsys):
        assert main(["select", "-n", "96", "-p", "64"]) == 0
        out = capsys.readouterr().out
        assert "best algorithm" in out and "ranking" in out

    def test_select_feasible(self, capsys):
        assert main(["select", "-n", "100", "-p", "64", "--feasible"]) == 0
        assert "best algorithm" in capsys.readouterr().out

    def test_unknown_machine(self):
        with pytest.raises(SystemExit):
            main(["select", "-n", "64", "-p", "16", "--machine", "cray"])


class TestInfoCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "cm5" in out and "ncube2-like" in out

    def test_regions(self, capsys):
        assert main(["regions", "--log2-p-max", "10", "--log2-n-max", "6"]) == 0
        assert "n=2^" in capsys.readouterr().out

    def test_regions_refine_matches_dense(self, capsys):
        assert main(["regions", "--no-disk-cache"]) == 0
        dense = capsys.readouterr().out
        assert main(["regions", "--no-disk-cache", "--refine"]) == 0
        assert capsys.readouterr().out == dense

    def test_regions_refine_tol_and_depth_flags(self, capsys):
        assert main(
            ["regions", "--log2-p-max", "10", "--log2-n-max", "6",
             "--refine", "--max-depth", "2", "--tol", "0.5", "--no-disk-cache"]
        ) == 0
        assert "n=2^" in capsys.readouterr().out

    def test_cache_stats_reports_warm_hit(self, capsys, tmp_path):
        import json

        from repro.core.cache import result_cache

        cache_dir = str(tmp_path / "shards")
        argv = ["regions", "--log2-p-max", "10", "--log2-n-max", "6",
                "--cache-dir", cache_dir, "--cache-stats"]
        assert main(argv) == 0
        capsys.readouterr()
        result_cache().clear()  # simulate a fresh process: disk tier only
        assert main(argv) == 0
        out = capsys.readouterr().out
        stats = json.loads(out.rsplit("cache stats:", 1)[1])
        assert stats["disk"]["hits"] > 0
        assert stats["disk"]["dir"] == cache_dir

    def test_iso(self, capsys):
        assert main(["iso", "cannon", "--log2-p-max", "8"]) == 0
        out = capsys.readouterr().out
        assert "isoefficiency of cannon" in out and "O(p^1.5)" in out

    def test_iso_dns_cap(self, capsys):
        assert main(["iso", "dns", "-e", "0.5"]) == 0
        assert "unreachable" in capsys.readouterr().out

    def test_memory(self, capsys):
        assert main(["memory", "-n", "32", "-p", "64"]) == 0
        out = capsys.readouterr().out
        assert "cannon" in out and "blowup" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSweepCommand:
    def test_sweep_table(self, capsys):
        assert main(["sweep", "cannon", "--n-values", "16", "--p-values", "4", "16"]) == 0
        out = capsys.readouterr().out
        assert "T_sim" in out and "cannon" in out

    def test_sweep_csv_to_file(self, capsys, tmp_path):
        out_file = tmp_path / "rows.csv"
        assert main([
            "sweep", "gk", "--n-values", "8", "--p-values", "8",
            "--format", "csv", "--out", str(out_file),
        ]) == 0
        assert "wrote" in capsys.readouterr().out
        assert out_file.read_text().startswith("algorithm,")

    def test_sweep_json(self, capsys):
        assert main(["sweep", "cannon", "--n-values", "8", "--p-values", "4",
                     "--format", "json"]) == 0
        import json

        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["algorithm"] == "cannon"


class TestGanttCommand:
    def test_gantt(self, capsys):
        assert main(["gantt", "cannon", "-n", "16", "-p", "4", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "rank    0" in out and "#" in out

    def test_gantt_infeasible(self):
        with pytest.raises(SystemExit):
            main(["gantt", "cannon", "-n", "2", "-p", "64"])


class TestCampaignCommand:
    def test_autopilot_smoke_writes_db_and_report(self, capsys, tmp_path):
        db = str(tmp_path / "camp")
        assert main([
            "campaign", "autopilot", "--seed", "5", "--count", "3",
            "--profile", "smoke", "--db", db,
        ]) == 0
        out = capsys.readouterr().out
        assert "anomaly report" in out
        for suffix in (".jsonl", ".sqlite", ".report.json"):
            assert (tmp_path / f"camp{suffix}").exists()

    def test_report_rerender_matches_run_output(self, capsys, tmp_path):
        import json

        db = str(tmp_path / "camp")
        assert main(["campaign", "autopilot", "--seed", "5", "--count", "2",
                     "--profile", "smoke", "--db", db]) == 0
        capsys.readouterr()
        json_out = tmp_path / "again.json"
        assert main(["campaign", "report", "--db", db,
                     "--json-out", str(json_out)]) == 0
        assert "scenarios" in capsys.readouterr().out
        assert json.loads(json_out.read_text())["kind"] == "campaign-report"

    def test_fail_on_anomaly_gates_with_planted_violation(self, tmp_path):
        # tightening the model tolerance to 1e-12 makes every fault-free
        # scenario an oracle violation, so the CI gate must trip (seed 3's
        # six-scenario smoke battery includes fault-free scenarios)
        with pytest.raises(SystemExit, match="fail-on-anomaly"):
            main(["campaign", "autopilot", "--seed", "3", "--count", "6",
                  "--profile", "smoke", "--db", str(tmp_path / "camp"),
                  "--model-tol", "1e-12", "--fail-on-anomaly"])

    def test_run_subcommand_reads_scenario_file(self, capsys, tmp_path):
        import json

        from repro.campaign.autopilot import PROFILES, generate_battery

        battery = generate_battery(7, 2, PROFILES["smoke"])
        path = tmp_path / "battery.json"
        path.write_text(json.dumps([s.to_dict() for s in battery]))
        assert main(["campaign", "run", "--scenarios", str(path),
                     "--db", str(tmp_path / "filecamp")]) == 0
        assert "2 of 2 scenarios executed" in capsys.readouterr().out


class TestSchedulerChoices:
    """Both CLIs enumerate schedulers from engine.SCHEDULERS, not a
    hard-coded list — adding a scheduler must surface everywhere at once."""

    def test_run_parser_choices_match_engine(self):
        from repro.simulator.engine import SCHEDULERS

        parser = build_parser()
        run_sub = next(
            a for a in parser._subparsers._group_actions[0].choices["run"]._actions
            if getattr(a, "dest", "") == "scheduler"
        )
        assert tuple(run_sub.choices) == SCHEDULERS

    def test_experiments_parser_choices_match_engine(self):
        import subprocess
        import sys

        from repro.simulator.engine import SCHEDULERS

        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "--help"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0
        for name in SCHEDULERS:
            assert name in proc.stdout

    def test_run_compiled_scheduler_skips_verification(self, capsys):
        assert main(["run", "cannon", "-n", "16", "-p", "16",
                     "--scheduler", "compiled"]) == 0
        out = capsys.readouterr().out
        assert "skipped (trace-compiled run, timing only)" in out

    def test_run_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            main(["run", "cannon", "-n", "16", "-p", "16",
                  "--scheduler", "warp"])
