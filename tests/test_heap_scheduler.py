"""The event-heap scheduler's deterministic ordering contract.

The heap's total order is the ``(timestamp, priority, seq, rank)`` key:
time first, resumes before wakes at equal times, and the monotone
``seq`` issued by ``Engine._schedule`` breaking every remaining tie by
insertion order.  Because ``seq`` is unique, no comparison ever falls
through to ``rank``, and nothing about the order depends on dict or set
iteration — so a heap run must replay identically within a process and
across processes with different hash seeds.

These tests pin that contract where it is easiest to regress:
adversarial same-timestamp batches (zero-cost operations collapse the
whole run onto ``t = 0``), the key stream produced by ``_schedule``
itself, and ``PYTHONHASHSEED`` independence checked across subprocesses.
"""

import os
import subprocess
import sys

import pytest

from repro.core.machine import MachineParams
from repro.simulator.engine import PRI_RESUME, PRI_WAKE, Engine
from repro.simulator.request import Barrier, Compute, Recv, Send
from repro.simulator.topology import FullyConnected, Hypercube

M = MachineParams(ts=3.0, tw=1.5)
ZERO = MachineParams(ts=0.0, tw=0.0)


def _ring_program(info):
    """Every rank forwards around a ring twice with a barrier between laps."""
    right = (info.rank + 1) % info.nprocs
    left = (info.rank - 1) % info.nprocs
    for lap in range(2):
        yield Compute(float(info.rank % 3))
        yield Send(dst=right, data=(info.rank, lap), nwords=4, tag=lap)
        got = yield Recv(src=left, tag=lap)
        yield Barrier()
    return got


def _trace_fingerprint(res):
    return [
        (e.rank, e.start, e.end, e.kind, e.detail, e.tag)
        for e in res.trace.events
    ]


class TestSameTimestampBatches:
    @staticmethod
    def _zero_cost_program(info):
        """Same shape as the ring, but every operation costs exactly 0."""
        right = (info.rank + 1) % info.nprocs
        left = (info.rank - 1) % info.nprocs
        for lap in range(2):
            yield Compute(0.0)
            yield Send(dst=right, data=(info.rank, lap), nwords=0, tag=lap)
            got = yield Recv(src=left, tag=lap)
            yield Barrier()
        return got

    def test_zero_cost_run_is_deterministic(self):
        """Every event lands at t=0: the seq tie-break alone orders the run."""
        fingerprints = set()
        for _ in range(10):
            res = Engine(FullyConnected(8), ZERO, trace=True, scheduler="heap").run(
                [self._zero_cost_program] * 8
            )
            fingerprints.add(tuple(_trace_fingerprint(res)))
        assert len(fingerprints) == 1

    def test_zero_cost_run_matches_rescan(self):
        progs = [self._zero_cost_program] * 8
        heap = Engine(FullyConnected(8), ZERO, scheduler="heap").run(progs)
        rescan = Engine(FullyConnected(8), ZERO, scheduler="rescan").run(progs)
        assert heap.parallel_time == rescan.parallel_time == 0.0
        assert heap.stats == rescan.stats
        assert heap.returns == rescan.returns

    def test_traced_order_stable_across_runs(self):
        """Identical costs on every rank: equal-time batches at every step."""
        fingerprints = {
            tuple(
                _trace_fingerprint(
                    Engine(Hypercube(3), M, trace=True, scheduler="heap").run(
                        [_ring_program] * 8
                    )
                )
            )
            for _ in range(5)
        }
        assert len(fingerprints) == 1


class TestScheduleHelper:
    """All insertion goes through ``_schedule``; its key stream is the order."""

    def _captured_keys(self, p=8, machine=M):
        keys = []
        orig = Engine._schedule

        def recording(self, when, priority, rank):
            orig(self, when, priority, rank)
            keys.append((when, priority, self._event_seq, rank))

        eng = Engine(FullyConnected(p), machine, scheduler="heap")
        try:
            Engine._schedule = recording
            eng.run([_ring_program] * p)
        finally:
            Engine._schedule = orig
        return keys

    def test_seq_is_monotone_and_unique(self):
        keys = self._captured_keys()
        seqs = [k[2] for k in keys]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_priorities_are_resume_or_wake(self):
        keys = self._captured_keys()
        assert keys  # the run actually went through the helper
        assert {k[1] for k in keys} <= {PRI_RESUME, PRI_WAKE}

    def test_key_stream_is_deterministic(self):
        assert self._captured_keys() == self._captured_keys()

    def test_rank_never_decides_a_comparison(self):
        """Unique seqs mean every key pair is ordered before the rank field."""
        keys = self._captured_keys()
        assert len({k[:3] for k in keys}) == len(keys)


class TestPriorityContract:
    def test_constants(self):
        assert PRI_RESUME == 0
        assert PRI_WAKE == 1
        assert PRI_RESUME < PRI_WAKE

    def test_resume_sorts_before_wake_at_equal_time(self):
        # the tuple order the heap relies on: priority beats seq and rank
        resume_late = (5.0, PRI_RESUME, 900, 7)
        wake_early = (5.0, PRI_WAKE, 2, 0)
        assert sorted([wake_early, resume_late])[0] == resume_late


_HASHSEED_SCRIPT = """\
import hashlib

from repro.core.machine import MachineParams
from repro.simulator.engine import Engine
from repro.simulator.request import Barrier, Compute, Recv, Send
from repro.simulator.topology import FullyConnected

# build the program table through a dict and a set, so any hidden
# dependence on hash iteration order would perturb the trace
ranks = {r for r in range(8)}
progs = {}
for r in sorted(ranks):
    def prog(info):
        right = (info.rank + 1) % info.nprocs
        left = (info.rank - 1) % info.nprocs
        for lap in range(2):
            yield Compute(float(info.rank % 3))
            yield Send(dst=right, data=(info.rank, lap), nwords=4, tag=lap)
            got = yield Recv(src=left, tag=lap)
            yield Barrier()
        return got
    progs[r] = prog

res = Engine(
    FullyConnected(8), MachineParams(ts=3.0, tw=1.5), trace=True, scheduler="heap"
).run([progs[r] for r in sorted(progs)])
lines = "".join(
    f"{e.rank},{e.start!r},{e.end!r},{e.kind},{e.detail},{e.tag}\\n"
    for e in res.trace.events
)
print(hashlib.sha256(lines.encode()).hexdigest())
print(repr(res.parallel_time))
"""


def test_event_order_independent_of_hash_seed():
    """The same run under different PYTHONHASHSEEDs emits the same trace.

    Dict/set iteration order changes with the hash seed; the heap key
    ``(timestamp, priority, seq, rank)`` must not.
    """
    outputs = set()
    for seed in ("0", "1", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.add(proc.stdout)
    assert len(outputs) == 1


@pytest.mark.parametrize("scheduler", ["ready", "heap"])
def test_simultaneous_wake_and_resume(scheduler):
    """A rank woken at exactly another rank's resume time: stable order.

    Rank 0 computes for exactly the message flight time, so its resume
    and rank 1's wake land in the same heap batch; both schedulers must
    agree with the reference on the resulting clocks.
    """
    flight = M.ts + 4 * M.tw

    def p0(info):
        yield Send(dst=1, data="x", nwords=4)
        yield Compute(0.0)
        yield Send(dst=1, data="y", nwords=4)

    def p1(info):
        yield Compute(flight)
        a = yield Recv(src=0)
        b = yield Recv(src=0)
        return (a, b)

    fast = Engine(FullyConnected(2), M, scheduler=scheduler).run([p0, p1])
    ref = Engine(FullyConnected(2), M, scheduler="rescan").run([p0, p1])
    assert fast.parallel_time == ref.parallel_time
    assert fast.stats == ref.stats
    assert fast.returns == ref.returns
