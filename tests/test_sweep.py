"""Tests for the sweep harness and exporters."""

import csv
import io
import json

import pytest

from repro.core.machine import MachineParams
from repro.experiments.sweep import rows_to_csv, rows_to_json, sweep

M = MachineParams(ts=10.0, tw=2.0)


class TestSweep:
    def test_covers_feasible_grid(self):
        rows = sweep(["cannon", "gk"], [8, 16], [4, 8, 16], M)
        combos = {(r["algorithm"], r["n"], r["p"]) for r in rows}
        # cannon feasible at p in {4, 16}; gk at p = 8
        assert ("cannon", 8, 4) in combos and ("cannon", 16, 16) in combos
        assert ("gk", 8, 8) in combos
        assert ("cannon", 8, 8) not in combos  # 8 not a square

    def test_rows_have_model_and_sim(self):
        rows = sweep(["cannon"], [16], [16], M)
        (row,) = rows
        assert row["T_sim"] > 0 and row["T_model"] > 0
        assert 0 < row["efficiency_sim"] <= 1
        assert row["messages"] > 0

    def test_strict_mode_raises(self):
        with pytest.raises(ValueError):
            sweep(["cannon"], [8], [8], M, skip_infeasible=False)

    def test_reproducible(self):
        r1 = sweep(["cannon"], [16], [16], M, seed=7)
        r2 = sweep(["cannon"], [16], [16], M, seed=7)
        assert r1 == r2


class TestExport:
    def test_csv_roundtrip(self):
        rows = sweep(["cannon"], [8, 16], [4], M)
        text = rows_to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == len(rows)
        assert parsed[0]["algorithm"] == "cannon"
        assert float(parsed[0]["T_sim"]) == pytest.approx(rows[0]["T_sim"])

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_json_roundtrip(self):
        rows = sweep(["gk"], [8], [8], M)
        parsed = json.loads(rows_to_json(rows))
        assert parsed[0]["n"] == 8
        assert parsed[0]["efficiency_sim"] == pytest.approx(rows[0]["efficiency_sim"])


class TestSweepModes:
    """jobs= and cache= must not change a single row."""

    def _grid(self, **kw):
        return sweep(["cannon", "gk", "simple"], [8, 16], [4, 8, 16], M, **kw)

    def test_parallel_matches_serial(self):
        assert self._grid(cache=False, jobs=3) == self._grid(cache=False, jobs=1)

    def test_cached_matches_uncached(self):
        from repro.core.cache import result_cache

        result_cache().clear()
        cold = self._grid()
        warm = self._grid()
        assert cold == warm == self._grid(cache=False)
        # the warm pass was served entirely from cache
        assert result_cache().stats()["hits"] >= len(warm)

    def test_rows_are_copies(self):
        from repro.core.cache import result_cache

        result_cache().clear()
        first = self._grid()
        first[0]["T_sim"] = -1.0
        assert self._grid()[0]["T_sim"] != -1.0

    def test_cache_keyed_on_machine_and_seed(self):
        from repro.core.cache import result_cache

        result_cache().clear()
        base = self._grid()
        other_m = sweep(["cannon"], [8], [4], MachineParams(ts=99.0, tw=1.0))
        assert other_m[0]["T_sim"] != base[0]["T_sim"]
        misses_before = result_cache().stats()["misses"]
        sweep(["cannon", "gk", "simple"], [8, 16], [4, 8, 16], M, seed=1)
        assert result_cache().stats()["misses"] > misses_before

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            sweep(["cannon"], [8], [4], M, jobs=0)

    def test_hoisted_verify_still_catches_wrong_results(self):
        # verification still runs per row (against the shared reference)
        rows = self._grid(cache=False, verify=True)
        assert rows == self._grid(cache=False, verify=False)
