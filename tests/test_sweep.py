"""Tests for the sweep harness and exporters."""

import csv
import io
import json
import os
import time

import pytest

from repro.core.machine import MachineParams
from repro.experiments.sweep import (
    SweepWorkerError,
    _simulate_block,
    rows_to_csv,
    rows_to_json,
    sweep,
)

M = MachineParams(ts=10.0, tw=2.0)


# -- crash-injection block functions ------------------------------------------------
#
# Module-level so they pickle into ProcessPoolExecutor workers.  They
# coordinate through environment variables (inherited by forked workers)
# and flag files, because worker processes share no Python state with
# the test.


def crash_worker_once(n, combos, machine, seed, verify):
    """Die hard (os._exit, like a segfault) the first time block n=16 runs."""
    flag = os.environ["SWEEP_TEST_FLAG"]
    if n == 16 and not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(1)
    return _simulate_block(n, combos, machine, seed, verify)


def always_fail_block(n, combos, machine, seed, verify):
    if n == 16:
        raise RuntimeError("injected block failure")
    return _simulate_block(n, combos, machine, seed, verify)


def hang_in_worker(n, combos, machine, seed, verify):
    """Hang block n=16 in worker processes only; inline retries succeed."""
    if n == 16 and os.getpid() != int(os.environ["SWEEP_TEST_MAIN_PID"]):
        time.sleep(30.0)
    return _simulate_block(n, combos, machine, seed, verify)


class TestSweep:
    def test_covers_feasible_grid(self):
        rows = sweep(["cannon", "gk"], [8, 16], [4, 8, 16], M)
        combos = {(r["algorithm"], r["n"], r["p"]) for r in rows}
        # cannon feasible at p in {4, 16}; gk at p = 8
        assert ("cannon", 8, 4) in combos and ("cannon", 16, 16) in combos
        assert ("gk", 8, 8) in combos
        assert ("cannon", 8, 8) not in combos  # 8 not a square

    def test_rows_have_model_and_sim(self):
        rows = sweep(["cannon"], [16], [16], M)
        (row,) = rows
        assert row["T_sim"] > 0 and row["T_model"] > 0
        assert 0 < row["efficiency_sim"] <= 1
        assert row["messages"] > 0

    def test_strict_mode_raises(self):
        with pytest.raises(ValueError):
            sweep(["cannon"], [8], [8], M, skip_infeasible=False)

    def test_reproducible(self):
        r1 = sweep(["cannon"], [16], [16], M, seed=7)
        r2 = sweep(["cannon"], [16], [16], M, seed=7)
        assert r1 == r2


class TestExport:
    def test_csv_roundtrip(self):
        rows = sweep(["cannon"], [8, 16], [4], M)
        text = rows_to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == len(rows)
        assert parsed[0]["algorithm"] == "cannon"
        assert float(parsed[0]["T_sim"]) == pytest.approx(rows[0]["T_sim"])

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_json_roundtrip(self):
        rows = sweep(["gk"], [8], [8], M)
        parsed = json.loads(rows_to_json(rows))
        assert parsed[0]["n"] == 8
        assert parsed[0]["efficiency_sim"] == pytest.approx(rows[0]["efficiency_sim"])


class TestSweepModes:
    """jobs= and cache= must not change a single row."""

    def _grid(self, **kw):
        return sweep(["cannon", "gk", "simple"], [8, 16], [4, 8, 16], M, **kw)

    def test_parallel_matches_serial(self):
        assert self._grid(cache=False, jobs=3) == self._grid(cache=False, jobs=1)

    def test_cached_matches_uncached(self):
        from repro.core.cache import result_cache

        result_cache().clear()
        cold = self._grid()
        warm = self._grid()
        assert cold == warm == self._grid(cache=False)
        # the warm pass was served entirely from cache
        assert result_cache().stats()["hits"] >= len(warm)

    def test_rows_are_copies(self):
        from repro.core.cache import result_cache

        result_cache().clear()
        first = self._grid()
        first[0]["T_sim"] = -1.0
        assert self._grid()[0]["T_sim"] != -1.0

    def test_cache_keyed_on_machine_and_seed(self):
        from repro.core.cache import result_cache

        result_cache().clear()
        base = self._grid()
        other_m = sweep(["cannon"], [8], [4], MachineParams(ts=99.0, tw=1.0))
        assert other_m[0]["T_sim"] != base[0]["T_sim"]
        misses_before = result_cache().stats()["misses"]
        sweep(["cannon", "gk", "simple"], [8, 16], [4, 8, 16], M, seed=1)
        assert result_cache().stats()["misses"] > misses_before

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            sweep(["cannon"], [8], [4], M, jobs=0)

    def test_hoisted_verify_still_catches_wrong_results(self):
        # verification still runs per row (against the shared reference)
        rows = self._grid(cache=False, verify=True)
        assert rows == self._grid(cache=False, verify=False)


# a machine no other test uses, so the shared result cache can't leak rows in
CKPT_M = MachineParams(ts=11.0, tw=3.0, name="ckpt-test")


def _ckpt_sweep(path=None, **kw):
    kw.setdefault("cache", False)
    return sweep(["cannon"], [8, 16], [4, 16], CKPT_M, checkpoint_path=path, **kw)


class TestDiskTier:
    """Finished sweep blocks persist across processes via the disk cache."""

    def test_second_run_is_served_from_disk(self):
        from repro.core.cache import disk_cache, result_cache

        rows = sweep(["cannon"], [16, 32], [4, 16], M)
        assert disk_cache().stats()["writes"] >= 2  # one shard per n-block
        result_cache().clear()  # force the next run past the memory tier

        calls = []

        def counting_block(n, combos, machine, seed, verify):
            calls.append(n)
            return _simulate_block(n, combos, machine, seed, verify)

        again = sweep(["cannon"], [16, 32], [4, 16], M, _block_fn=counting_block)
        assert calls == []  # nothing recomputed
        assert again == rows
        assert disk_cache().stats()["hits"] >= 2

    def test_different_seed_misses(self):
        from repro.core.cache import result_cache

        sweep(["cannon"], [16], [4], M, seed=0)
        result_cache().clear()
        calls = []

        def counting_block(n, combos, machine, seed, verify):
            calls.append(n)
            return _simulate_block(n, combos, machine, seed, verify)

        sweep(["cannon"], [16], [4], M, seed=1, _block_fn=counting_block)
        assert calls == [16]

    def test_cache_false_bypasses_disk(self):
        from repro.core.cache import disk_cache

        sweep(["cannon"], [16], [4], M, cache=False)
        stats = disk_cache().stats()
        assert stats["writes"] == 0 and stats["hits"] == 0

    def test_rows_identical_after_json_roundtrip(self):
        from repro.core.cache import result_cache

        rows = sweep(["cannon", "gk"], [16], [4, 16], M)
        result_cache().clear()
        again = sweep(["cannon", "gk"], [16], [4, 16], M)
        assert again == rows


class TestCheckpoint:
    def test_rows_land_on_disk(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        rows = _ckpt_sweep(path)
        lines = [json.loads(l) for l in open(path) if l.strip()]
        header, row_lines = lines[0], lines[1:]
        assert header["kind"] == "sweep-checkpoint"
        assert header["machine"]["ts"] == 11.0
        assert len(row_lines) == len(rows)
        assert sorted(
            (r["row"]["algorithm"], r["row"]["n"], r["row"]["p"]) for r in row_lines
        ) == sorted((r["algorithm"], r["n"], r["p"]) for r in rows)

    def test_resume_recomputes_nothing_when_complete(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        rows = _ckpt_sweep(path)

        def boom(*a):  # no block may run on a complete checkpoint
            raise AssertionError("resume recomputed a finished block")

        resumed = _ckpt_sweep(path, resume=True, _block_fn=boom)
        assert resumed == rows

    def test_resume_runs_only_missing_blocks(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        sweep(["cannon"], [8], [4, 16], CKPT_M, cache=False, checkpoint_path=path)
        ran = []

        def counting(n, combos, machine, seed, verify):
            ran.append(n)
            return _simulate_block(n, combos, machine, seed, verify)

        resumed = _ckpt_sweep(path, resume=True, _block_fn=counting)
        assert ran == [16]
        assert resumed == _ckpt_sweep()
        # the file is now self-contained: a second resume recomputes nothing
        again = _ckpt_sweep(path, resume=True, _block_fn=counting)
        assert ran == [16] and again == resumed

    def test_header_mismatch_fails_loudly(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        _ckpt_sweep(path)
        with pytest.raises(ValueError, match="different sweep configuration"):
            _ckpt_sweep(path, resume=True, seed=1)

    def test_garbage_file_fails_loudly(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text("definitely not json\n")
        with pytest.raises(ValueError, match="not a sweep checkpoint"):
            _ckpt_sweep(str(path), resume=True)

    def test_resume_needs_a_path(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            sweep(["cannon"], [8], [4], CKPT_M, resume=True)

    def test_worker_timeout_validation(self):
        with pytest.raises(ValueError, match="worker_timeout"):
            sweep(["cannon"], [8], [4], CKPT_M, worker_timeout=0.0)


class TestCrashRecovery:
    """A dying/hanging worker must cost a retry, never the sweep."""

    def _parallel(self, **kw):
        return _ckpt_sweep(jobs=2, **kw)

    def test_worker_death_is_retried_inline(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SWEEP_TEST_FLAG", str(tmp_path / "crashed"))
        rows = self._parallel(_block_fn=crash_worker_once)
        assert os.path.exists(str(tmp_path / "crashed"))  # the crash really fired
        assert rows == _ckpt_sweep()

    def test_twice_failing_block_names_the_n(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with pytest.raises(SweepWorkerError, match="n=16") as exc:
            self._parallel(path=path, _block_fn=always_fail_block)
        assert exc.value.n == 16
        # the other block's rows were salvaged to disk before the raise
        salvaged = [json.loads(l)["row"] for l in list(open(path))[1:] if l.strip()]
        assert {r["n"] for r in salvaged} == {8}
        # and a resume retries only the failed block
        resumed = _ckpt_sweep(path, resume=True)
        assert resumed == _ckpt_sweep()

    def test_watchdog_rescues_hung_worker(self, monkeypatch):
        monkeypatch.setenv("SWEEP_TEST_MAIN_PID", str(os.getpid()))
        start = time.monotonic()
        rows = self._parallel(_block_fn=hang_in_worker, worker_timeout=1.0)
        assert time.monotonic() - start < 25.0  # did not wait out the 30 s sleep
        assert rows == _ckpt_sweep()
