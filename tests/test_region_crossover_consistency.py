"""Cross-checks between the region maps and the crossover curves.

Figures 1-3 are drawn from two ingredients — the pairwise equal-overhead
curves and the applicability lines.  These tests verify the two
ingredients agree with the painted regions: walking n upward at fixed p,
the winner changes exactly where the relevant n_EqualTo curve says it
should.
"""

import numpy as np
import pytest

from repro.core.crossover import equal_overhead_n
from repro.core.machine import FUTURE_MIMD, NCUBE2_LIKE, SIMD_CM2_LIKE
from repro.core.models import MODELS
from repro.core.regions import best_algorithm


def _winner_transition(machine, p, lo=1.5, hi=1e7, samples=800):
    """(n, old, new) at each winner change while sweeping n at fixed p."""
    ns = np.geomspace(lo, hi, samples)
    transitions = []
    prev = best_algorithm(ns[0], p, machine)
    for n in ns[1:]:
        cur = best_algorithm(n, p, machine)
        if cur != prev:
            transitions.append((n, prev, cur))
            prev = cur
    return transitions


class TestBoundaryConsistency:
    @pytest.mark.parametrize("machine", [NCUBE2_LIKE, FUTURE_MIMD, SIMD_CM2_LIKE])
    @pytest.mark.parametrize("log2p", [8, 12, 16])
    def test_transitions_lie_on_curves_or_applicability_lines(self, machine, log2p):
        p = 2.0**log2p
        for n, old, new in _winner_transition(machine, p):
            # the boundary is either an applicability edge of one of the two
            # algorithms, or the equal-overhead curve between them
            keys = [k for k in (old, new) if k != "x"]
            on_applicability = any(
                abs(np.log(max(MODELS[k].min_procs(n), 1.0)) - np.log(p)) < 0.05
                or abs(np.log(MODELS[k].max_procs(n)) - np.log(p)) < 0.05
                for k in keys
            )
            if on_applicability or "x" in (old, new):
                continue
            # search only near the boundary: some pairs (DNS vs GK) have two
            # roots and we must match the one this boundary sits on
            cross = equal_overhead_n(old, new, p, machine, n_lo=n / 1.25, n_hi=n * 1.25)
            assert cross is not None, (machine.name, p, n, old, new)
            assert cross == pytest.approx(n, rel=0.05)

    def test_gk_cannon_boundary_matches_curve_exactly(self):
        # at a (machine, p) where the gk->cannon boundary exists, the
        # painted boundary equals the Eq. 15 curve
        p = 2.0**8
        transitions = _winner_transition(FUTURE_MIMD, p, lo=2, hi=1e4)
        gk_to_cannon = [t for t in transitions if t[1] == "gk" and t[2] == "cannon"]
        assert gk_to_cannon
        n_boundary = gk_to_cannon[0][0]
        n_curve = equal_overhead_n("gk", "cannon", p, FUTURE_MIMD)
        assert n_boundary == pytest.approx(n_curve, rel=0.02)

    def test_winner_never_inapplicable(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            n = float(2 ** rng.uniform(0.5, 14))
            p = float(2 ** rng.uniform(0, 24))
            key = best_algorithm(n, p, FUTURE_MIMD)
            if key != "x":
                assert MODELS[key].applicable(n, p)
            else:
                assert all(
                    not MODELS[k].applicable(n, p)
                    for k in ("berntsen", "cannon", "gk", "dns")
                )
