"""SRV001: serve-layer code must use batched/cached model evaluation."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_paths, analyze_source
from repro.analysis.cli import _explain


def ids(src: str, path: str, **kw) -> list[str]:
    return sorted({f.rule_id for f in analyze_source(textwrap.dedent(src), path, **kw)})


SERVE_PATH = "src/repro/serve/handlers.py"


def test_scalar_predict_in_serve_fires():
    findings = analyze_source(
        textwrap.dedent(
            """
            from repro.core.prediction import predict

            async def handle(body, machine):
                return 200, predict("gk", body["n"], body["p"], machine)
            """
        ),
        SERVE_PATH,
        select=["SRV001"],
    )
    assert [f.rule_id for f in findings] == ["SRV001"]
    assert "predict_points" in findings[0].message


def test_best_algorithm_and_selector_fire():
    assert ids(
        """
        from repro.core.regions import best_algorithm
        from repro.core.selector import select

        async def handle(body, machine):
            who = best_algorithm(body["n"], body["p"], machine)
            ranked = select(body["n"], body["p"], machine)
            return 200, {"who": who, "ranked": ranked}
        """,
        SERVE_PATH,
        select=["SRV001"],
    ) == ["SRV001"]


def test_model_method_call_fires():
    findings = analyze_source(
        textwrap.dedent(
            """
            from repro.core.models import MODELS

            async def handle(body, machine):
                t = MODELS["gk"].time(body["n"], body["p"], machine)
                return 200, {"predicted_time": t}
            """
        ),
        SERVE_PATH,
        select=["SRV001"],
    )
    assert [f.rule_id for f in findings] == ["SRV001"]
    assert "micro-batcher" in findings[0].message


def test_model_variable_method_fires():
    assert ids(
        """
        async def handle(model, n, p, machine):
            return 200, {"eff": model.efficiency(n, p, machine)}
        """,
        SERVE_PATH,
        select=["SRV001"],
    ) == ["SRV001"]


def test_batched_entry_points_are_clean():
    assert ids(
        """
        from repro.core.prediction import predict_points, simulated_prediction
        from repro.core.refine import winner_at_points

        async def handle(body, machine):
            batch = predict_points(machine, body["ns"], body["ps"])
            winner, gap = winner_at_points(machine, body["ns"], body["ps"])
            return 200, {"count": len(batch)}
        """,
        SERVE_PATH,
        select=["SRV001"],
    ) == []


def test_model_keys_variables_are_not_models():
    # `model_keys` holds strings, not models: list methods on it are fine
    assert ids(
        """
        async def handle(model_keys):
            model_keys.count("gk")
            return 200, {"keys": list(model_keys)}
        """,
        SERVE_PATH,
        select=["SRV001"],
    ) == []


def test_same_code_outside_serve_is_clean():
    # the contract is scoped: scalar calls are fine in the CLI layer
    assert ids(
        """
        from repro.core.prediction import predict

        def cmd(args, machine):
            return predict("gk", args.n, args.p, machine)
        """,
        "src/repro/cli.py",
        select=["SRV001"],
    ) == []


def test_serve_package_passes_its_own_rule():
    report = analyze_paths(["src/repro/serve"], select=["SRV001"])
    assert report.findings == []
    assert report.files_checked >= 6


def test_explain_text():
    text = _explain("SRV001")
    assert text is not None
    assert "SRV001" in text
    assert "MicroBatcher" in text  # the fix names the replacement
    assert "MODELS['gk'].time" in text  # the example shows the smell
