"""Cross-module integration tests: algorithms x topologies x sizes."""

import numpy as np
import pytest

from conftest import rand_pair
from repro.algorithms import registry
from repro.algorithms.cannon import run_cannon
from repro.algorithms.gk import run_gk
from repro.algorithms.simple import run_simple
from repro.core.machine import CM5, MachineParams, NCUBE2_LIKE
from repro.simulator.engine import Engine
from repro.simulator.topology import FullyConnected, Hypercube, Mesh2D

M = MachineParams(ts=25.0, tw=1.5)


class TestAlgorithmMatrix:
    """Every algorithm, across a grid of feasible instances."""

    CASES = [
        ("simple", 8, 4), ("simple", 16, 16), ("simple", 25, 16), ("simple", 16, 64),
        ("cannon", 8, 4), ("cannon", 16, 16), ("cannon", 25, 16), ("cannon", 16, 64),
        ("fox", 8, 4), ("fox", 16, 16), ("fox", 25, 16),
        ("berntsen", 8, 8), ("berntsen", 16, 8), ("berntsen", 16, 64), ("berntsen", 32, 64),
        ("gk", 8, 8), ("gk", 16, 8), ("gk", 16, 64), ("gk", 9, 8), ("gk", 8, 512),
        ("dns", 4, 32), ("dns", 4, 64), ("dns", 8, 128),
    ]

    @pytest.mark.parametrize("key,n,p", CASES)
    def test_product_and_accounting(self, key, n, p):
        assert registry.get(key).feasible(n, p), (key, n, p)
        A, B = rand_pair(n, seed=hash((key, n, p)) % 2**31)
        res = registry.run(key, A, B, p, M)
        assert np.allclose(res.C, A @ B)
        assert res.parallel_time > 0
        # overhead identity: p*Tp - W == total non-useful time
        non_useful = sum(res.parallel_time - s.compute_time for s in res.sim.stats)
        extra = res.sim.total_compute_time - res.work
        assert res.total_overhead == pytest.approx(non_useful + extra, abs=1e-6)
        assert 0 < res.efficiency <= 1.0 + 1e-9


class TestTopologyMatrix:
    def test_cannon_same_on_mesh_and_hypercube(self):
        """Section 4.4: 'Cannon's algorithm's performance is the same on
        both mesh and hypercube architectures' (nearest-neighbor only)."""
        A, B = rand_pair(16, seed=3)
        t_hc = run_cannon(A, B, 16, M, topology=Hypercube(4)).parallel_time
        t_mesh = run_cannon(A, B, 16, M, topology=Mesh2D(4, 4)).parallel_time
        assert t_hc == t_mesh

    def test_cannon_fully_connected_matches_hypercube(self):
        A, B = rand_pair(16, seed=3)
        t_hc = run_cannon(A, B, 16, M).parallel_time
        t_fc = run_cannon(A, B, 16, M, topology=FullyConnected(16)).parallel_time
        assert t_hc == t_fc  # all rolls single-hop either way (ct, th=0)

    def test_simple_on_three_topologies(self):
        A, B = rand_pair(16, seed=4)
        for topo in (Hypercube(4), Mesh2D(4, 4), FullyConnected(16)):
            res = run_simple(A, B, 16, M, topology=topo)
            assert np.allclose(res.C, A @ B)

    def test_gk_relay_vs_direct_only_affects_time(self):
        A, B = rand_pair(16, seed=5)
        topo = FullyConnected(64)
        r1 = run_gk(A, B, 64, M, topology=topo, route_mode="relay")
        r2 = run_gk(A, B, 64, M, topology=topo, route_mode="direct")
        assert np.allclose(r1.C, r2.C)
        assert r1.parallel_time != r2.parallel_time

    def test_per_hop_latency_slows_multi_hop_algorithms(self):
        # th > 0 penalizes GK's relays but not Cannon's single-hop rolls
        A, B = rand_pair(16, seed=6)
        m_hop = M.with_(th=5.0)
        t_cannon = run_cannon(A, B, 16, M).parallel_time
        t_cannon_hop = run_cannon(A, B, 16, m_hop).parallel_time
        assert t_cannon_hop == pytest.approx(t_cannon + 2 * 3 * 5.0)  # 1 hop per roll


class TestEndToEnd:
    def test_figure4_point_end_to_end(self):
        """One full Figure 4 point: simulate both algorithms on the CM-5
        model, verify products, and check the efficiency ordering the
        paper reports for n < crossover."""
        A, B = rand_pair(48, seed=7)
        from repro.algorithms.gk import run_gk_cm5

        gk = run_gk_cm5(A, B, 64)
        cn = run_cannon(A, B, 64, CM5, topology=FullyConnected(64))
        assert np.allclose(gk.C, A @ B) and np.allclose(cn.C, A @ B)
        assert gk.efficiency > cn.efficiency  # n=48 < 83

    def test_selector_to_simulation_roundtrip(self):
        from repro.core.selector import select_and_run

        for n, p in ((32, 16), (96, 64)):
            A, B = rand_pair(n, seed=n)
            selection, result = select_and_run(A, B, p, NCUBE2_LIKE)
            assert np.allclose(result.C, A @ B)
            # prediction and simulation agree to the phase-overlap band
            assert result.parallel_time <= selection.predicted_time * 1.1

    def test_experiments_cli_smoke(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        out = tmp_path / "report.txt"
        assert main(["sec8", "--out", str(out)]) == 0
        text = out.read_text()
        assert "31.6" in text

    def test_contention_mode_preserves_results(self):
        """Link contention may change timing but never numerics."""
        from repro.algorithms.base import grid_layout
        from repro.algorithms.cannon import cannon_program
        from repro.blockops.partition import BlockSpec

        A, B = rand_pair(16, seed=8)
        side = 4
        topo = Hypercube(4)
        layout = grid_layout(topo, side, side, scheme="gray")
        spec = BlockSpec(16, 16, side, side)
        ab, bb = spec.scatter(A), spec.scatter(B)
        factories = [None] * 16
        for i in range(side):
            for j in range(side):
                factories[layout[i][j]] = cannon_program(
                    i, j, ab[i][(i + j) % side], bb[(i + j) % side][j],
                    [layout[i][c] for c in range(side)],
                    [layout[r][j] for r in range(side)],
                )
        res = Engine(topo, M, link_contention=True).run(factories)
        C = np.zeros((16, 16))
        for (i, j), blk in res.returns:
            C[spec.block_slice(i, j)] = blk
        assert np.allclose(C, A @ B)
