"""Tests for the overhead-decomposition analysis."""

import numpy as np
import pytest

from conftest import rand_pair
from repro.algorithms.berntsen import run_berntsen
from repro.algorithms.cannon import run_cannon
from repro.algorithms.gk import run_gk
from repro.core.decomposition import communication_by_kind, decompose_overhead
from repro.core.machine import MachineParams

M = MachineParams(ts=10.0, tw=2.0)


class TestIdentity:
    @pytest.mark.parametrize("runner,n,p", [
        (run_cannon, 16, 16),
        (run_cannon, 24, 16),
        (run_gk, 16, 64),
        (run_gk, 32, 8),
    ])
    def test_constituents_sum_to_overhead(self, runner, n, p):
        A, B = rand_pair(n, seed=p)
        res = runner(A, B, p, M)
        bd = decompose_overhead(res.sim, res.work)
        assert bd.accounted == pytest.approx(bd.total_overhead, rel=1e-9, abs=1e-6)

    def test_berntsen_extra_compute_is_reduction_adds(self):
        n, p = 16, 64
        A, B = rand_pair(n, seed=1)
        res = run_berntsen(A, B, p, M)
        bd = decompose_overhead(res.sim, res.work)
        assert bd.extra_compute_time > 0
        # reduce-scatter adds: < one block per processor at t_add-ish cost
        assert bd.extra_compute_time < n * n * np.log2(p)
        assert bd.accounted == pytest.approx(bd.total_overhead)

    def test_gk_extra_compute_positive(self):
        A, B = rand_pair(16, seed=2)
        res = run_gk(A, B, 64, M)
        bd = decompose_overhead(res.sim, res.work)
        assert bd.extra_compute_time > 0  # stage-3 merge adds

    def test_validation(self):
        A, B = rand_pair(8, seed=1)
        res = run_cannon(A, B, 4, M)
        with pytest.raises(ValueError):
            decompose_overhead(res.sim, -1.0)


class TestStructure:
    def test_cannon_overhead_is_mostly_communication(self):
        # even blocks, perfectly balanced: no end skew, overhead = comm
        n, p = 16, 16
        A, B = rand_pair(n, seed=3)
        res = run_cannon(A, B, p, M)
        bd = decompose_overhead(res.sim, res.work)
        assert bd.communication_fraction == pytest.approx(1.0)
        assert bd.end_skew_time == pytest.approx(0.0)
        assert bd.extra_compute_time == pytest.approx(0.0)

    def test_uneven_blocks_create_skew(self):
        # n not divisible by sqrt(p): the bigger blocks finish later
        A, B = rand_pair(18, seed=3)
        res = run_cannon(A, B, 16, M)
        bd = decompose_overhead(res.sim, res.work)
        assert bd.end_skew_time > 0

    def test_as_dict_keys(self):
        A, B = rand_pair(8, seed=1)
        res = run_cannon(A, B, 4, M)
        d = decompose_overhead(res.sim, res.work).as_dict()
        assert set(d) >= {"work", "total_overhead", "send_time", "recv_wait_time"}


class TestTraceByKind:
    def test_requires_trace(self):
        A, B = rand_pair(8, seed=1)
        res = run_cannon(A, B, 4, M)
        with pytest.raises(ValueError):
            communication_by_kind(res.sim)

    def test_kind_totals_match_stats(self):
        A, B = rand_pair(16, seed=1)
        res = run_cannon(A, B, 16, M, trace=True)
        kinds = communication_by_kind(res.sim)
        assert kinds["compute"] == pytest.approx(res.sim.total_compute_time)
        assert kinds["send"] == pytest.approx(sum(s.send_time for s in res.sim.stats))
        assert kinds["recv"] == pytest.approx(
            sum(s.recv_wait_time for s in res.sim.stats)
        )


class TestCommunicationByTag:
    def test_gk_stage_attribution(self):
        """Communication groups into the five GK stages (route/bcast x2 + reduce)."""
        from repro.core.decomposition import communication_by_tag

        A, B = rand_pair(32, seed=4)
        res = __import__("repro.algorithms.gk", fromlist=["run_gk"]).run_gk(
            A, B, 64, M, trace=True
        )
        by_tag = communication_by_tag(res.sim)
        # tags: 10 route A, 20 bcast A, 30 route B, 40 bcast B, 50 reduce
        assert set(by_tag) == {10, 20, 30, 40, 50}
        assert all(v > 0 for v in by_tag.values())
        # broadcasts (log r tree steps) cost more than the point-to-point routes
        assert by_tag[20] > by_tag[10]
        assert by_tag[40] > by_tag[30]

    def test_cannon_roll_tags(self):
        from repro.core.decomposition import communication_by_tag

        A, B = rand_pair(16, seed=4)
        res = run_cannon(A, B, 16, M, trace=True)
        by_tag = communication_by_tag(res.sim)
        assert set(by_tag) == {3, 4}  # A rolls, B rolls (pre-aligned run)
        # the two operands move the same volume
        assert by_tag[3] == pytest.approx(by_tag[4], rel=0.25)

    def test_requires_trace(self):
        from repro.core.decomposition import communication_by_tag

        A, B = rand_pair(8, seed=1)
        res = run_cannon(A, B, 4, M)
        with pytest.raises(ValueError):
            communication_by_tag(res.sim)

    def test_tag_times_cover_all_comm(self):
        from repro.core.decomposition import communication_by_tag

        A, B = rand_pair(16, seed=4)
        res = run_cannon(A, B, 16, M, trace=True)
        by_tag = communication_by_tag(res.sim)
        total = sum(s.send_time + s.recv_wait_time for s in res.sim.stats)
        assert sum(by_tag.values()) == pytest.approx(total)
