"""Engine edge cases: self-sends, zero-word messages, generator misuse,
mixed traffic patterns, and bookkeeping corner cases."""

import pytest

from repro.core.machine import MachineParams
from repro.simulator.engine import Engine, run_spmd
from repro.simulator.errors import DeadlockError
from repro.simulator.request import Barrier, Compute, Recv, Send, SendAll
from repro.simulator.topology import FullyConnected, Hypercube

M = MachineParams(ts=10.0, tw=2.0)


class TestSelfSend:
    def test_self_send_delivers(self):
        def prog(info):
            yield Send(dst=info.rank, data="me", nwords=3)
            got = yield Recv(src=info.rank)
            return got

        res = run_spmd(FullyConnected(2), M, prog)
        assert res.returns == ["me", "me"]

    def test_self_send_costed_like_a_message(self):
        # the model has no special case for self-sends; a program that
        # wants them free should not issue them
        def prog(info):
            yield Send(dst=info.rank, data=0, nwords=3)
            yield Recv(src=info.rank)

        res = run_spmd(FullyConnected(1), M, prog)
        assert res.parallel_time == pytest.approx(M.ts + 3 * M.tw)


class TestZeroWordMessages:
    def test_zero_words_costs_startup_only(self):
        def sender(info):
            yield Send(dst=1, data="hdr", nwords=0)

        def receiver(info):
            got = yield Recv(src=0)
            return got

        res = Engine(FullyConnected(2), M).run([sender, receiver])
        assert res.returns[1] == "hdr"
        assert res.parallel_time == pytest.approx(M.ts)

    def test_zero_cost_compute(self):
        def prog(info):
            yield Compute(0.0)
            return "done"

        res = run_spmd(FullyConnected(1), M, prog)
        assert res.parallel_time == 0.0


class TestMixedPatterns:
    def test_many_to_one_funnel(self):
        def prog(info):
            if info.rank == 0:
                got = []
                for src in range(1, info.nprocs):
                    got.append((yield Recv(src=src)))
                return sorted(got)
            yield Send(dst=0, data=info.rank, nwords=4)

        res = run_spmd(FullyConnected(6), M, prog)
        assert res.returns[0] == [1, 2, 3, 4, 5]
        # receiver waits for the last arrival; senders overlap
        assert res.parallel_time == pytest.approx(M.ts + 4 * M.tw)

    def test_one_to_many_fanout_serializes_on_sender(self):
        def prog(info):
            if info.rank == 0:
                for dst in range(1, info.nprocs):
                    yield Send(dst=dst, data=dst, nwords=4)
            else:
                got = yield Recv(src=0)
                return got

        res = run_spmd(FullyConnected(5), M, prog)
        assert res.stats[0].finish_time == pytest.approx(4 * (M.ts + 4 * M.tw))

    def test_barrier_then_exchange(self):
        def prog(info):
            yield Compute(float(info.rank * 10))
            yield Barrier()
            other = info.nprocs - 1 - info.rank
            if other != info.rank:
                yield Send(dst=other, data=info.rank, nwords=1)
                got = yield Recv(src=other)
                return got
            return info.rank

        res = run_spmd(FullyConnected(4), M, prog)
        assert res.returns == [3, 2, 1, 0]

    def test_sendall_empty_is_noop(self):
        def prog(info):
            yield SendAll([])
            return "ok"

        res = run_spmd(FullyConnected(1), M, prog)
        assert res.returns == ["ok"] and res.parallel_time == 0.0


class TestDeadlockShapes:
    def test_three_cycle_deadlock(self):
        def prog(info):
            got = yield Recv(src=(info.rank + 1) % 3)
            yield Send(dst=(info.rank - 1) % 3, data=got, nwords=1)

        with pytest.raises(DeadlockError) as err:
            run_spmd(FullyConnected(3), M, prog)
        assert set(err.value.blocked) == {0, 1, 2}

    def test_wrong_tag_deadlocks(self):
        def sender(info):
            yield Send(dst=1, data=0, nwords=1, tag=7)

        def receiver(info):
            yield Recv(src=0, tag=8)

        with pytest.raises(DeadlockError):
            Engine(FullyConnected(2), M).run([sender, receiver])

    def test_partial_progress_before_deadlock(self):
        # rank 1 finishes fine; rank 0 then deadlocks on a phantom message
        def p0(info):
            yield Recv(src=1, tag=99)

        def p1(info):
            yield Compute(5.0)
            return "done"

        with pytest.raises(DeadlockError) as err:
            Engine(FullyConnected(2), M).run([p0, p1])
        assert list(err.value.blocked) == [0]


class TestReturnsAndStats:
    def test_immediate_return(self):
        def prog(info):
            return info.rank * 2
            yield  # pragma: no cover - makes this a generator

        res = run_spmd(FullyConnected(3), M, prog)
        assert res.returns == [0, 2, 4]
        assert res.parallel_time == 0.0

    def test_comm_time_property(self):
        def sender(info):
            yield Send(dst=1, data=0, nwords=5)

        def receiver(info):
            yield Recv(src=0)

        res = Engine(FullyConnected(2), M).run([sender, receiver])
        assert res.stats[0].comm_time == res.stats[0].send_time
        assert res.stats[1].comm_time == res.stats[1].recv_wait_time
        assert res.total_comm_time == pytest.approx(2 * (M.ts + 5 * M.tw))

    def test_hypercube_mismatched_program_count(self):
        with pytest.raises(ValueError):
            Engine(Hypercube(2), M).run([lambda i: iter(())] * 3)


class TestSchedulerSelection:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            Engine(FullyConnected(2), M, scheduler="optimistic")

    def test_run_spmd_scheduler_passthrough(self):
        def prog(info):
            if info.rank == 0:
                yield Send(dst=1, data="x", nwords=3)
            else:
                got = yield Recv(src=0)
                assert got == "x"
            yield Barrier()

        r1 = run_spmd(FullyConnected(2), M, prog, scheduler="ready")
        r2 = run_spmd(FullyConnected(2), M, prog, scheduler="rescan")
        assert r1.parallel_time == r2.parallel_time
        assert r1.stats == r2.stats

    def test_link_contention_uses_rescan(self):
        # reservation order is part of the contention contract; the
        # engine must fall back to the reference scheduler silently
        def prog(info):
            if info.rank == 0:
                yield Send(dst=1, data=None, nwords=4)
            else:
                yield Recv(src=0)

        eng = Engine(FullyConnected(2), M, link_contention=True, scheduler="ready")
        res = eng.run([prog, prog])
        assert res.total_messages == 1
