"""Tests for the ASCII plot helper."""

from repro.experiments.asciiplot import ascii_plot


class TestAsciiPlot:
    def test_empty(self):
        assert ascii_plot({}) == "(no data)"
        assert ascii_plot({"a": []}) == "(no data)"

    def test_markers_and_legend(self):
        text = ascii_plot({"one": [(0, 0), (1, 1)], "two": [(0, 1), (1, 0)]})
        assert "* one" in text and "o two" in text
        assert "*" in text and "o" in text

    def test_extremes_placed_at_edges(self):
        text = ascii_plot({"s": [(0.0, 0.0), (10.0, 1.0)]}, width=20, height=5)
        lines = text.splitlines()
        grid = [ln.split("|", 1)[1] for ln in lines[1:6]]
        assert grid[0].rstrip().endswith("*")  # max y at top-right
        assert grid[-1].lstrip("| ").startswith("*")  # min y at bottom-left

    def test_y_range_override(self):
        text = ascii_plot({"s": [(0, 0.4), (1, 0.6)]}, y_range=(0.0, 1.0))
        assert "       1 |" in text
        assert "       0 |" in text

    def test_log_x(self):
        text = ascii_plot({"s": [(1, 0), (10, 1), (100, 2)]}, logx=True)
        assert "(log scale)" in text

    def test_flat_series(self):
        text = ascii_plot({"s": [(0, 5.0), (1, 5.0)]})
        assert "*" in text  # no division-by-zero on constant y

    def test_dimensions(self):
        text = ascii_plot({"s": [(0, 0), (1, 1)]}, width=30, height=7)
        lines = text.splitlines()
        # 1 legend + 7 rows + axis + footer
        assert len(lines) == 10
        assert all(len(ln.split("|", 1)[1]) == 30 for ln in lines[1:8])
