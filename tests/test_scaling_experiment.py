"""Tests for the scaling experiment (Section 3's premises in simulation)."""

import pytest

from repro.experiments import scaling


class TestSpeedupCurve:
    def test_efficiency_decays_with_p(self):
        rows = scaling.speedup_curve("cannon", 48, p_values=(1, 4, 16, 64, 256))
        effs = [r["efficiency_sim"] for r in rows]
        assert effs == sorted(effs, reverse=True)
        assert effs[0] == pytest.approx(1.0)
        assert effs[-1] < 0.5

    def test_speedup_grows_but_sublinearly(self):
        rows = scaling.speedup_curve("cannon", 48, p_values=(4, 16, 64))
        sp = {r["p"]: r["speedup_sim"] for r in rows}
        assert sp[16] > sp[4] and sp[64] > sp[16]
        assert sp[64] / sp[16] < 4  # sublinear growth

    def test_infeasible_p_skipped(self):
        rows = scaling.speedup_curve("cannon", 48, p_values=(4, 5, 16))
        assert [r["p"] for r in rows] == [4, 16]

    def test_sim_tracks_model(self):
        rows = scaling.speedup_curve("gk", 48, p_values=(8, 64))
        for r in rows:
            assert r["efficiency_sim"] == pytest.approx(r["efficiency_model"], rel=0.25)


class TestIsoefficiencyInSimulation:
    @pytest.mark.parametrize("key,p_values", [("cannon", (4, 16, 64)), ("gk", (8, 64, 512))])
    def test_efficiency_holds_along_curve(self, key, p_values):
        rows = scaling.isoefficiency_in_simulation(key, 0.5, p_values=p_values)
        for r in rows:
            # held within a band of the target (rounding to feasible sizes and
            # uneven-block load imbalance move individual points slightly)
            assert abs(r["efficiency_sim"] - 0.5) < 0.15, r

    def test_problem_size_grows(self):
        rows = scaling.isoefficiency_in_simulation("cannon", 0.5, p_values=(4, 16, 64))
        ws = [r["W"] for r in rows]
        assert ws == sorted(ws)
        # superlinear growth in p (Cannon's isoefficiency is p^1.5)
        assert ws[-1] / ws[0] > (64 / 4)

    def test_run_and_format(self):
        res = scaling.run()
        text = scaling.format_text(res)
        assert "isoefficiency" in text
        assert "fixed problem size" in text


class TestScaledSpeedup:
    def test_efficiency_flat_under_memory_constrained_scaling(self):
        """n = n0*sqrt(p) keeps Cannon's overhead-to-work ratio constant."""
        rows = scaling.scaled_speedup("cannon", n0=8, p_values=(16, 64, 256))
        effs = [r["efficiency_sim"] for r in rows]
        assert max(effs) - min(effs) < 0.05
        for r in rows:
            assert r["efficiency_sim"] == pytest.approx(r["efficiency_model"], rel=0.1)

    def test_scaled_speedup_grows_linearly_with_p(self):
        rows = scaling.scaled_speedup("cannon", n0=8, p_values=(16, 64, 256))
        sp = {r["p"]: r["scaled_speedup_sim"] for r in rows}
        # E flat => S_scaled = E*p scales like p (within the E drift band)
        assert sp[64] / sp[16] == pytest.approx(4.0, rel=0.1)
        assert sp[256] / sp[64] == pytest.approx(4.0, rel=0.1)

    def test_non_square_p_rejected(self):
        with pytest.raises(ValueError):
            scaling.scaled_speedup("cannon", p_values=(8,))

    def test_run_large_p_and_format(self):
        res = scaling.run_large_p(p_values=(16, 64), n0=4)
        text = scaling.format_large_p_text(res)
        assert "scaled speedup" in text
        assert "cannon" in text
