"""CLI smoke tests and the self-lint gate for ``python -m repro.analysis``."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.analysis.cli import main

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

KNOWN_BAD = textwrap.dedent(
    """
    import random

    def jitter():
        return random.random()
    """
)


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


def test_self_lint_is_clean():
    """The repo's own source must pass its own analysis (acceptance gate)."""
    report = analyze_paths([SRC])
    assert report.parse_errors == []
    assert report.findings == [], "\n".join(f.format() for f in report.findings)
    assert report.files_checked > 50


def test_cli_json_smoke_on_src():
    proc = run_cli("--format", "json", "src/repro")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["files_checked"] > 50


def test_cli_exits_nonzero_on_known_bad_fixture(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(KNOWN_BAD)
    proc = run_cli("--format", "json", str(bad))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["ok"] is False
    assert [f["rule"] for f in payload["findings"]] == ["DET001"]


@pytest.mark.parametrize(
    "snippet,expected_rule",
    [
        ("import time\nt = time.time()\n", "DET002"),
        ("s = set()\nfor x in s:\n    pass\n", "DET003"),
    ],
)
def test_cli_catches_each_fixture_kind(tmp_path, snippet, expected_rule):
    # DET002 is path-scoped: plant the fixture inside a simulator-shaped tree
    target = tmp_path / "repro" / "simulator"
    target.mkdir(parents=True)
    (target / "probe.py").write_text(snippet)
    proc = run_cli("--format", "json", str(tmp_path))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert expected_rule in {f["rule"] for f in payload["findings"]}


def test_cli_text_output_and_exit_zero(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("import numpy as np\nrng = np.random.default_rng(0)\n")
    assert main([str(good)]) == 0
    out = capsys.readouterr().out
    assert out.startswith("OK —") and "1 file(s) checked" in out


def test_cli_counts_suppressions(tmp_path, capsys):
    waived = tmp_path / "repro" / "simulator" / "probe.py"
    waived.parent.mkdir(parents=True)
    waived.write_text("import time\nt = time.time()  # repro: ignore[DET002] -- fixture\n")
    assert main(["--format", "json", str(tmp_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert [f["rule"] for f in payload["suppressed"]] == ["DET002"]


def test_cli_writes_report_file(tmp_path):
    out = tmp_path / "report.json"
    proc = run_cli("--format", "text", "--output", str(out), "src/repro")
    assert proc.returncode == 0
    payload = json.loads(out.read_text())
    assert payload["ok"] is True


def test_cli_list_rules():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("DET001", "MOD002", "ENG003"):
        assert rule_id in proc.stdout


def test_cli_bad_rule_id_is_usage_error():
    proc = run_cli("--select", "NOPE99", "src/repro")
    assert proc.returncode == 2
    assert "unknown rule ids" in proc.stderr
