"""Cross-module property-based tests (hypothesis)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.cannon import run_cannon
from repro.algorithms.gk import run_gk
from repro.algorithms.simple import run_simple
from repro.core.machine import MachineParams
from repro.core.models import COMPARISON_MODELS, MODELS

machines = st.builds(
    MachineParams,
    ts=st.floats(min_value=0.0, max_value=500.0),
    tw=st.floats(min_value=0.0, max_value=20.0),
)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=24),
    side=st.sampled_from([1, 2, 4]),
    ts=st.floats(min_value=0.0, max_value=300.0),
    tw=st.floats(min_value=0.0, max_value=10.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_cannon_always_correct_and_costed(n, side, ts, tw, seed):
    """Any feasible Cannon instance: exact product, exact cost formula."""
    if side > n:
        side = 1
    p = side * side
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    m = MachineParams(ts=ts, tw=tw)
    res = run_cannon(A, B, p, m)
    assert np.allclose(res.C, A @ B)
    if n % side == 0:  # even blocks: closed-form cost is exact
        expected = n**3 / p + 2 * (side - 1) * (ts + tw * n * n / p)
        assert res.parallel_time == pytest.approx(expected)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=20),
    q=st.sampled_from([0, 1, 2]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_gk_always_correct(n, q, seed):
    """Any feasible GK instance produces the exact product."""
    r = 2**q
    if r > n:
        r = 1
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    res = run_gk(A, B, r**3, MachineParams(ts=25.0, tw=1.0))
    assert np.allclose(res.C, A @ B)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=20),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_simple_matches_cannon_product(n, seed):
    """Different algorithms agree with each other bit-for-bit-ish."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    m = MachineParams(ts=5.0, tw=1.0)
    c1 = run_simple(A, B, 4, m).C
    c2 = run_cannon(A, B, 4, m).C
    assert np.allclose(c1, c2)


@settings(max_examples=40, deadline=None)
@given(
    machine=machines,
    log_n=st.floats(min_value=1.0, max_value=12.0),
    log_p=st.floats(min_value=0.0, max_value=20.0),
)
def test_model_invariants(machine, log_n, log_p):
    """Every model: Tp >= compute part, To >= 0, 0 < E <= 1 where applicable."""
    n, p = 2.0**log_n, 2.0**log_p
    for key in COMPARISON_MODELS:
        model = MODELS[key]
        if not model.applicable(n, p):
            continue
        tp = model.time(n, p, machine)
        assert tp >= n**3 / p - 1e-9
        assert model.overhead(n, p, machine) >= -1e-6
        e = model.efficiency(n, p, machine)
        assert 0 < e <= 1 + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    machine=machines,
    log_p=st.floats(min_value=1.0, max_value=16.0),
    e=st.floats(min_value=0.1, max_value=0.9),
)
def test_isoefficiency_delivers_target_efficiency(machine, log_p, e):
    """W(p) from the solver really achieves efficiency >= target."""
    from repro.core.isoefficiency import isoefficiency

    p = 2.0**log_p
    model = MODELS["cannon"]
    if machine.ts == 0 and machine.tw == 0:
        return  # free communication: any W gives E = 1
    w = isoefficiency(model, p, machine, e)
    n = w ** (1 / 3)
    assert model.efficiency(n, p, machine) >= e - 1e-6


@settings(max_examples=30, deadline=None)
@given(
    log_n=st.floats(min_value=0.5, max_value=14.0),
    log_p=st.floats(min_value=0.0, max_value=24.0),
    machine=machines,
)
def test_region_winner_minimizes_overhead(log_n, log_p, machine):
    """best_algorithm always returns the applicable argmin (or 'x')."""
    from repro.core.regions import best_algorithm

    n, p = 2.0**log_n, 2.0**log_p
    key = best_algorithm(n, p, machine)
    applicable = [k for k in COMPARISON_MODELS if MODELS[k].applicable(n, p)]
    if not applicable:
        assert key == "x"
        return
    assert key in applicable
    win = MODELS[key].overhead(n, p, machine)
    for other in applicable:
        assert win <= MODELS[other].overhead(n, p, machine) + 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_simulation_is_deterministic(seed):
    """Identical inputs give identical clocks and products."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((8, 8))
    B = rng.standard_normal((8, 8))
    m = MachineParams(ts=7.0, tw=3.0)
    r1 = run_gk(A, B, 8, m)
    r2 = run_gk(A, B, 8, m)
    assert r1.parallel_time == r2.parallel_time
    assert np.array_equal(r1.C, r2.C)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=16),
    seed=st.integers(min_value=0, max_value=2**16),
    ts=st.floats(min_value=0.0, max_value=100.0),
)
def test_overhead_identity_on_simulated_runs(n, seed, ts):
    """For any simulated run: p*Tp - W == sum of per-rank non-compute time
    (+ any extra charged arithmetic, e.g. reduction adds)."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    m = MachineParams(ts=ts, tw=1.0)
    res = run_cannon(A, B, 4, m)
    lhs = res.total_overhead
    idle_or_comm = sum(
        res.parallel_time - s.compute_time for s in res.sim.stats
    )
    assert lhs == pytest.approx(idle_or_comm, abs=1e-6)
