"""Tests for the Section 2 metric helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import (
    efficiency,
    efficiency_from_overhead,
    k_factor,
    speedup,
    total_overhead,
)


class TestSpeedup:
    def test_basic(self):
        assert speedup(100.0, 25.0) == 4.0

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            speedup(100.0, 0.0)


class TestEfficiency:
    def test_basic(self):
        assert efficiency(100.0, 25.0, 4) == 1.0
        assert efficiency(100.0, 50.0, 4) == 0.5

    def test_bad_p(self):
        with pytest.raises(ValueError):
            efficiency(100.0, 25.0, 0)


class TestOverhead:
    def test_basic(self):
        assert total_overhead(100.0, 30.0, 4) == 20.0

    def test_ideal_is_zero(self):
        assert total_overhead(100.0, 25.0, 4) == 0.0

    def test_bad_p(self):
        with pytest.raises(ValueError):
            total_overhead(100.0, 25.0, -1)


class TestKFactor:
    def test_half(self):
        assert k_factor(0.5) == pytest.approx(1.0)

    def test_point_eight(self):
        assert k_factor(0.8) == pytest.approx(4.0)

    def test_bounds(self):
        with pytest.raises(ValueError):
            k_factor(0.0)
        with pytest.raises(ValueError):
            k_factor(1.0)

    @given(st.floats(min_value=0.01, max_value=0.99))
    def test_roundtrip_with_overhead_formula(self, e):
        # E = 1/(1 + To/W) with To = W/K reproduces E
        k = k_factor(e)
        w = 1000.0
        assert efficiency_from_overhead(w, w / k) == pytest.approx(e)


class TestEfficiencyFromOverhead:
    def test_basic(self):
        assert efficiency_from_overhead(100.0, 100.0) == 0.5
        assert efficiency_from_overhead(100.0, 0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            efficiency_from_overhead(0.0, 1.0)
        with pytest.raises(ValueError):
            efficiency_from_overhead(1.0, -1.0)

    @given(
        st.floats(min_value=1.0, max_value=1e12),
        st.floats(min_value=0.0, max_value=1e12),
    )
    def test_range(self, w, to):
        e = efficiency_from_overhead(w, to)
        assert 0.0 < e <= 1.0
