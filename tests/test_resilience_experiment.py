"""Tests for the resilience experiment (efficiency vs fault rate,
optimal checkpoint interval) and Young's interval formula."""

import json

import pytest

from repro.core.machine import CM5
from repro.core.metrics import young_checkpoint_interval
from repro.experiments import resilience


@pytest.fixture(scope="module")
def report():
    # tiny but structurally complete: includes the fault-free endpoint
    return resilience.run(
        p=64, n=16,
        drop_rates=(0.0, 0.05),
        interval_factors=(0.5, 1.0),
        crash_rate=1.0,
    )


class TestYoungInterval:
    def test_formula(self):
        assert young_checkpoint_interval(50.0, 10000.0) == 1000.0

    def test_scales_with_sqrt(self):
        t1 = young_checkpoint_interval(10.0, 1000.0)
        t4 = young_checkpoint_interval(40.0, 1000.0)
        assert t4 == pytest.approx(2.0 * t1)

    @pytest.mark.parametrize("bad", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            young_checkpoint_interval(*bad)


class TestResilienceRun:
    def test_baseline_is_fault_free(self, report):
        for name in ("cannon", "gk"):
            assert report.baseline[name]["T"] > 0
            assert 0 < report.baseline[name]["E"] <= 1

    def test_zero_drop_rate_row_matches_baseline(self, report):
        row = report.fault_rows[0]
        assert row["drop_rate"] == 0.0
        assert row["E_cannon"] == pytest.approx(report.baseline["cannon"]["E"])
        assert row["E_gk"] == pytest.approx(report.baseline["gk"]["E"])
        assert row["retrans_cannon"] == 0 and row["retrans_gk"] == 0

    def test_drops_cost_efficiency(self, report):
        clean, faulty = report.fault_rows
        assert faulty["E_cannon"] < clean["E_cannon"]
        assert faulty["E_gk"] < clean["E_gk"]
        assert faulty["retrans_cannon"] > 0 and faulty["retrans_gk"] > 0

    def test_checkpoint_rows_carry_the_tradeoff(self, report):
        assert len(report.checkpoint_rows) == 2
        for row in report.checkpoint_rows:
            for name in ("cannon", "gk"):
                assert row[f"T_{name}"] >= report.baseline[name]["T"]
                assert row[f"slowdown_{name}"] >= 1.0
                assert row[f"ckpt_time_{name}"] >= 0.0
                assert row[f"recovery_time_{name}"] >= 0.0

    def test_best_and_young_are_populated(self, report):
        factors = {row["factor"] for row in report.checkpoint_rows}
        for name in ("cannon", "gk"):
            assert report.best[name] in factors
            assert report.young[name] > 0

    def test_deterministic(self, report):
        again = resilience.run(
            p=64, n=16,
            drop_rates=(0.0, 0.05),
            interval_factors=(0.5, 1.0),
            crash_rate=1.0,
        )
        assert again == report


class TestRendering:
    def test_format_text_has_both_curves(self, report):
        text = resilience.format_text(report)
        assert "efficiency vs per-message drop rate" in text.lower()
        assert "checkpoint" in text.lower()
        assert "young" in text.lower()

    def test_to_json_is_serializable_and_complete(self, report):
        payload = resilience.to_json(report)
        text = json.dumps(payload)  # must not raise (numpy scalars coerced)
        parsed = json.loads(text)
        assert parsed["experiment"] == "resilience"
        assert parsed["p"] == 64 and parsed["n"] == 16
        assert len(parsed["fault_rows"]) == 2
        assert len(parsed["checkpoint_rows"]) == 2
        assert set(parsed["young"]) == {"cannon", "gk"}

    def test_cli_fast_path_smoke(self, tmp_path):
        from repro.experiments.__main__ import run_one

        out = tmp_path / "resilience.json"
        text = run_one("resilience", fast=True, json_out=str(out))
        assert "drop rate" in text.lower()
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "resilience"

    def test_default_machine_is_cm5(self, report):
        assert report.machine.ts == CM5.ts and report.machine.tw == CM5.tw


class TestSchedulerThreading:
    def test_default_report_records_no_scheduler(self, report):
        assert report.scheduler is None
        assert json.loads(json.dumps(resilience.to_json(report)))["scheduler"] is None

    def test_u_curves_are_bit_identical_across_schedulers(self, report):
        # the fault regime's bit-identity contract, pinned end to end:
        # the same U-curve study on the event-heap core must reproduce
        # the reference (rescan) report number for number
        heap = resilience.run(
            p=64, n=16,
            drop_rates=(0.0, 0.05),
            interval_factors=(0.5, 1.0),
            crash_rate=1.0,
            scheduler="heap",
        )
        assert heap.scheduler == "heap"
        assert heap.fault_rows == report.fault_rows
        assert heap.checkpoint_rows == report.checkpoint_rows
        assert heap.baseline == report.baseline
        assert heap.best == report.best and heap.young == report.young

    def test_cli_threads_scheduler(self, tmp_path):
        from repro.experiments.__main__ import run_one

        out = tmp_path / "resilience.json"
        run_one("resilience", fast=True, json_out=str(out), scheduler="heap")
        assert json.loads(out.read_text())["scheduler"] == "heap"
