"""Tests for the isoefficiency solver (Sections 3 and 5)."""

import math

import pytest

from repro.core.isoefficiency import (
    fit_growth_exponent,
    isoefficiency,
    isoefficiency_curve,
    isoefficiency_terms,
)
from repro.core.machine import MachineParams, NCUBE2_LIKE
from repro.core.metrics import k_factor
from repro.core.models import MODELS

M = MachineParams(ts=2.0, tw=0.5)


class TestBalance:
    def test_satisfies_central_relation(self):
        # at the solution, W == K * To(W, p) whenever the comm terms bind
        model = MODELS["cannon"]
        for e in (0.3, 0.5, 0.8):
            for p in (64.0, 4096.0):
                w = isoefficiency(model, p, M, e)
                n = w ** (1 / 3)
                assert w == pytest.approx(k_factor(e) * model.overhead(n, p, M), rel=1e-6)

    def test_achieved_efficiency_matches_target(self):
        model = MODELS["gk"]
        e = 0.6
        w = isoefficiency(model, 512.0, M, e)
        n = w ** (1 / 3)
        assert model.efficiency(n, 512.0, M) == pytest.approx(e, rel=1e-6)

    def test_monotone_in_p(self):
        model = MODELS["cannon"]
        ws = [isoefficiency(model, float(p), M, 0.5) for p in (16, 64, 256, 1024)]
        assert ws == sorted(ws)

    def test_monotone_in_efficiency(self):
        model = MODELS["cannon"]
        ws = [isoefficiency(model, 256.0, M, e) for e in (0.2, 0.5, 0.8)]
        assert ws == sorted(ws)

    def test_cannon_exact_tw_scaling(self):
        # with ts = 0 the tw term is the whole overhead and Eq. 9 is exact:
        # W = 8 K^3 tw^3 p^1.5
        model = MODELS["cannon"]
        m = MachineParams(ts=0.0, tw=1.5)
        e = 0.5
        p = 2.0**20
        w = isoefficiency(model, p, m, e)
        expected = 8 * k_factor(e) ** 3 * m.tw**3 * p**1.5
        assert w == pytest.approx(expected, rel=1e-6)

    def test_cannon_exact_ts_scaling(self):
        # with tw = 0 the ts term is the whole overhead and Eq. 8 is exact:
        # W = 2 K ts p^1.5
        model = MODELS["cannon"]
        m = MachineParams(ts=3.0, tw=0.0)
        e = 0.5
        p = 2.0**20
        w = isoefficiency(model, p, m, e)
        assert w == pytest.approx(2 * k_factor(e) * m.ts * p**1.5, rel=1e-6)

    def test_p_below_one_rejected(self):
        with pytest.raises(ValueError):
            isoefficiency(MODELS["cannon"], 0.5, M)


class TestConcurrencyBound:
    def test_berntsen_concurrency_dominates(self):
        # Section 5.2: despite tiny comm overhead, W must grow as p^2
        model = MODELS["berntsen"]
        p = 2.0**30
        w = isoefficiency(model, p, M, 0.5)
        assert w == pytest.approx(p**2)

    def test_cannon_concurrency_vs_comm(self):
        # with near-zero comm costs, the p^1.5 concurrency bound is the floor
        model = MODELS["cannon"]
        tiny = MachineParams(ts=1e-9, tw=1e-9)
        w = isoefficiency(model, 2.0**20, tiny, 0.5)
        assert w == pytest.approx((2.0**20) ** 1.5)


class TestDNSCap:
    def test_unreachable_efficiency_inf(self):
        assert isoefficiency(MODELS["dns"], 64.0, NCUBE2_LIKE, 0.5) == math.inf

    def test_reachable_below_cap(self):
        m = MachineParams(ts=0.05, tw=0.05)
        w = isoefficiency(MODELS["dns"], 64.0, m, 0.3)
        assert math.isfinite(w) and w > 0


class TestTermwise:
    def test_cannon_terms(self):
        terms = isoefficiency_terms(MODELS["cannon"], 1024.0, M, 0.5)
        assert set(terms) == {"ts", "tw", "concurrency"}
        k = k_factor(0.5)
        assert terms["ts"] == pytest.approx(2 * k * M.ts * 1024.0**1.5, rel=1e-6)
        assert terms["tw"] == pytest.approx(8 * k**3 * M.tw**3 * 1024.0**1.5, rel=1e-6)
        assert terms["concurrency"] == pytest.approx(1024.0**1.5)

    def test_overall_at_least_max_term(self):
        p = 2.0**16
        for key in ("cannon", "gk", "berntsen"):
            model = MODELS[key]
            terms = isoefficiency_terms(model, p, M, 0.5)
            finite = [v for v in terms.values() if math.isfinite(v)]
            w = isoefficiency(model, p, M, 0.5)
            assert w >= max(finite) * 0.99


class TestCurveAndFit:
    def test_curve_shape(self):
        curve = isoefficiency_curve(MODELS["cannon"], M, 0.5)
        assert curve.model_key == "cannon"
        assert len(curve.p_values) == len(curve.w_values)

    def test_fit_recovers_pure_power(self):
        ps = [2.0**k for k in range(4, 20, 2)]
        ws = [7 * p**1.5 for p in ps]
        assert fit_growth_exponent(ps, ws) == pytest.approx(1.5)

    def test_fit_with_log_factor(self):
        ps = [2.0**k for k in range(4, 20, 2)]
        ws = [p * math.log2(p) ** 3 for p in ps]
        assert fit_growth_exponent(ps, ws, log_power=3) == pytest.approx(1.0)

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_growth_exponent([2.0], [4.0])

    @pytest.mark.parametrize(
        "key,log_power,expected",
        [("cannon", 0, 1.5), ("simple", 0, 1.5), ("berntsen", 0, 2.0), ("gk", 3, 1.0)],
    )
    def test_table1_asymptotics(self, key, log_power, expected):
        ps = [2.0**k for k in range(10, 40, 4)]
        ws = [isoefficiency(MODELS[key], p, M, 0.5) for p in ps]
        slope = fit_growth_exponent(ps, ws, log_power=log_power)
        assert slope == pytest.approx(expected, abs=0.15)
