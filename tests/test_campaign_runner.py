"""Campaign runner: batteries, retry, resume, parallel determinism, and
the planted-violation acceptance check."""

from __future__ import annotations

import pytest

from repro.campaign.database import CampaignDB
from repro.campaign.oracles import OracleConfig
from repro.core.cache import CorruptArtifactWarning
from repro.campaign.runner import run_campaign
from repro.campaign.schema import Scenario
from repro.core.machine import PRESETS
from repro.simulator.faults import FaultPlan

M = PRESETS["cm5"]


def battery(count: int = 3) -> list[Scenario]:
    return [
        Scenario(machine=M, algorithms=("cannon",), n_values=(16,),
                 p_values=(4, 16), seed=i)
        for i in range(count)
    ]


def db_bytes(prefix) -> bytes:
    return CampaignDB(prefix).jsonl_path.read_bytes()


class TestRun:
    def test_battery_lands_in_order_with_summary(self, tmp_path):
        summary = run_campaign(battery(), str(tmp_path / "camp"))
        assert (summary.total, summary.executed, summary.ok) == (3, 3, 3)
        assert summary.anomalous == summary.failed == summary.anomalies == 0
        recs = list(CampaignDB(tmp_path / "camp").records())
        assert [r["index"] for r in recs] == [0, 1, 2]
        assert summary.fingerprint == CampaignDB(tmp_path / "camp").fingerprint()
        assert (tmp_path / "camp.sqlite").exists()

    def test_duplicate_scenarios_rejected(self, tmp_path):
        s = battery(1)[0]
        with pytest.raises(ValueError, match="duplicate scenarios"):
            run_campaign([s, s], str(tmp_path / "camp"))

    @pytest.mark.parametrize("kwargs, fragment", [
        ({"retries": -1}, "retries"),
        ({"backoff": 0.5}, "backoff"),
    ])
    def test_parameter_validation(self, tmp_path, kwargs, fragment):
        with pytest.raises(ValueError, match=fragment):
            run_campaign(battery(1), str(tmp_path / "camp"), **kwargs)

    def test_planted_violation_is_detected(self, tmp_path):
        # acceptance check: tightening the model tolerance to ~zero turns
        # ordinary model/simulator slack into a reported anomaly
        summary = run_campaign(
            battery(1), str(tmp_path / "camp"),
            oracles=OracleConfig(model_rel_tol=1e-12, divergence=False),
        )
        assert summary.anomalous == 1
        assert summary.anomalies >= 1
        rec = next(CampaignDB(tmp_path / "camp").records())
        assert rec["status"] == "anomalous"
        assert {a["oracle"] for a in rec["anomalies"]} == {"model-disagreement"}


class TestRetry:
    def test_flaky_scenario_is_retried(self, tmp_path):
        calls = {}

        def flaky(scenario, cfg):
            calls[scenario.seed] = calls.get(scenario.seed, 0) + 1
            if scenario.seed == 1 and calls[scenario.seed] == 1:
                raise OSError("transient")
            from repro.campaign.executor import execute_scenario
            return execute_scenario(scenario, cfg)

        summary = run_campaign(battery(), str(tmp_path / "camp"),
                               retries=1, _execute_fn=flaky)
        assert summary.ok == 3 and summary.failed == 0
        recs = {r["index"]: r for r in CampaignDB(tmp_path / "camp").records()}
        assert recs[1]["attempts"] == 2
        assert recs[0]["attempts"] == recs[2]["attempts"] == 1

    def test_exhausted_retries_record_a_failure(self, tmp_path):
        def always_dies(scenario, cfg):
            raise RuntimeError("persistent failure")

        summary = run_campaign(battery(2), str(tmp_path / "camp"),
                               retries=2, _execute_fn=always_dies)
        assert summary.failed == 2 and summary.ok == 0
        for rec in CampaignDB(tmp_path / "camp").records():
            assert rec["status"] == "failed"
            assert rec["attempts"] == 3
            assert "persistent failure" in rec["error"]
            assert rec["rows"] is None


class TestResume:
    def test_resume_skips_done_and_matches_uninterrupted(self, tmp_path):
        scenarios = battery(4)
        run_campaign(scenarios, str(tmp_path / "full"))
        full = db_bytes(tmp_path / "full")

        # simulate SIGKILL mid-battery: header + two records land intact,
        # the third is cut mid-line
        lines = full.split(b"\n")
        partial = b"\n".join(lines[:3]) + b"\n" + lines[3][: len(lines[3]) // 2]
        (tmp_path / "part.jsonl").write_bytes(partial)

        with pytest.warns(CorruptArtifactWarning):
            resumed = run_campaign(scenarios, str(tmp_path / "part"), resume=True)
        assert resumed.executed == 2
        assert (resumed.ok, resumed.total) == (4, 4)
        assert db_bytes(tmp_path / "part") == full
        assert resumed.fingerprint == CampaignDB(tmp_path / "full").fingerprint()

    def test_complete_campaign_resumes_to_a_no_op(self, tmp_path):
        scenarios = battery(2)
        first = run_campaign(scenarios, str(tmp_path / "camp"))
        again = run_campaign(scenarios, str(tmp_path / "camp"), resume=True)
        assert again.executed == 0
        assert again.fingerprint == first.fingerprint

    def test_resume_with_different_oracles_fails_loudly(self, tmp_path):
        scenarios = battery(2)
        run_campaign(scenarios, str(tmp_path / "camp"))
        with pytest.raises(ValueError, match="different battery"):
            run_campaign(scenarios, str(tmp_path / "camp"), resume=True,
                         oracles=OracleConfig(model_rel_tol=0.5))


class TestParallel:
    def test_jobs_produce_identical_bytes(self, tmp_path):
        scenarios = battery(5)
        run_campaign(scenarios, str(tmp_path / "serial"))
        run_campaign(scenarios, str(tmp_path / "pooled"), jobs=3)
        assert db_bytes(tmp_path / "serial") == db_bytes(tmp_path / "pooled")

    def test_pool_failure_falls_back_inline(self, tmp_path):
        # an unpicklable executor breaks every worker task; the runner
        # must recover inline and still finish the battery in order
        summary = run_campaign(
            battery(3), str(tmp_path / "camp"), jobs=2, retries=1,
            _execute_fn=lambda s, c: _inline_execute(s, c),
        )
        assert summary.ok == 3
        recs = list(CampaignDB(tmp_path / "camp").records())
        assert [r["index"] for r in recs] == [0, 1, 2]
        ref = run_campaign(battery(3), str(tmp_path / "ref"))
        a = [_strip_attempts(r) for r in recs]
        b = [_strip_attempts(r) for r in CampaignDB(tmp_path / "ref").records()]
        assert a == b


class TestFaultBattery:
    def test_mixed_fault_battery_is_clean_and_deterministic(self, tmp_path):
        scenarios = [
            Scenario(machine=M, algorithms=("cannon",), n_values=(16,), p_values=(4,),
                     fault_plan=FaultPlan(seed=9, drop_rate=0.1, timeout=500.0)),
            Scenario(machine=M, algorithms=("cannon",), n_values=(16,), p_values=(4,),
                     fault_plan=FaultPlan(seed=9, straggler_rate=0.5,
                                          straggler_factor=3.0), scheduler="heap"),
            Scenario(machine=M, algorithms=("gk",), n_values=(16,), p_values=(8,),
                     fault_plan=FaultPlan(horizon=1e8, crash_times=((1, 100.0),),
                                          checkpoint_interval=50.0,
                                          recovery_cost=10.0)),
        ]
        s1 = run_campaign(scenarios, str(tmp_path / "a"))
        s2 = run_campaign(scenarios, str(tmp_path / "b"))
        assert s1.ok == 3 and s1.anomalies == 0
        assert db_bytes(tmp_path / "a") == db_bytes(tmp_path / "b")


def _inline_execute(scenario, cfg):
    from repro.campaign.executor import execute_scenario

    return execute_scenario(scenario, cfg)


def _strip_attempts(rec):
    out = dict(rec)
    out.pop("attempts", None)
    return out
