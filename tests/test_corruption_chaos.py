"""Corruption chaos: torn and bit-flipped persisted artifacts must
degrade to a cache miss or a salvaged resume with a warning — never an
unhandled exception."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.cache import CorruptArtifactWarning, DiskCache
from repro.core.machine import MachineParams
from repro.experiments.sweep import sweep

M = MachineParams(ts=11.0, tw=3.0, name="chaos-test")


def _sweep(path=None, **kw):
    kw.setdefault("cache", False)
    return sweep(["cannon"], [8, 16], [4, 16], M, checkpoint_path=path, **kw)


class TestDiskShards:
    def _shard(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = cache.key_for({"k": "chaos"})
        cache.put_arrays(key, {"a": np.arange(64, dtype=np.float64)})
        return cache, key, tmp_path / f"{key}.npz"

    def test_truncated_npz_is_a_warned_miss(self, tmp_path):
        cache, key, path = self._shard(tmp_path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.warns(CorruptArtifactWarning, match="treating it as a miss"):
            assert cache.get_arrays(key) is None
        assert not path.exists()  # quarantined, the next put starts clean

    def test_bitflipped_npz_is_a_warned_miss(self, tmp_path):
        cache, key, path = self._shard(tmp_path)
        raw = bytearray(path.read_bytes())
        for offset in (10, len(raw) // 2, len(raw) - 10):
            raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.warns(CorruptArtifactWarning):
            assert cache.get_arrays(key) is None
        assert not path.exists()

    def test_empty_npz_is_a_warned_miss(self, tmp_path):
        cache, key, path = self._shard(tmp_path)
        path.write_bytes(b"")
        with pytest.warns(CorruptArtifactWarning):
            assert cache.get_arrays(key) is None

    def test_corrupt_json_shard_is_a_warned_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = cache.key_for({"k": "json-chaos"})
        cache.put_json(key, [{"row": 1}])
        path = tmp_path / f"{key}.json"
        path.write_text('{"rows": [truncat')
        with pytest.warns(CorruptArtifactWarning):
            assert cache.get_json(key) is None
        assert not path.exists()

    def test_wrong_document_shape_is_a_warned_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = cache.key_for({"k": "shape-chaos"})
        cache.put_json(key, [{"row": 1}])
        (tmp_path / f"{key}.json").write_text('[1, 2, 3]')
        with pytest.warns(CorruptArtifactWarning):
            assert cache.get_json(key) is None


class TestCheckpointChaos:
    def test_midline_truncation_salvages_and_resumes(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        rows = _sweep(str(path))
        raw = path.read_bytes()
        assert raw.endswith(b"\n")
        path.write_bytes(raw[:-9])  # SIGKILL mid-append: torn last row
        with pytest.warns(CorruptArtifactWarning, match="line"):
            resumed = _sweep(str(path), resume=True)
        assert resumed == rows
        # the salvage truncated back to a clean line boundary before
        # appending, so the repaired file parses end to end
        for line in path.read_bytes().splitlines():
            json.loads(line)

    def test_bitflipped_row_is_skipped_with_warning(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        rows = _sweep(str(path))
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][:10] + b"\xff\xfe" + lines[1][12:]
        path.write_bytes(b"".join(lines))
        with pytest.warns(CorruptArtifactWarning):
            resumed = _sweep(str(path), resume=True)
        assert resumed == rows

    def test_corrupt_rows_do_not_block_salvage_of_good_rows(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        _sweep(str(path))
        lines = path.read_bytes().splitlines(keepends=True)
        good_before = len(lines) - 1
        lines[2] = b'{"row": "not a dict"}\n'
        path.write_bytes(b"".join(lines))
        ran = []

        def counting(n, combos, machine, seed, verify):
            ran.append(n)
            from repro.experiments.sweep import _simulate_block
            return _simulate_block(n, combos, machine, seed, verify)

        with pytest.warns(CorruptArtifactWarning):
            resumed = _sweep(str(path), resume=True, _block_fn=counting)
        assert resumed == _sweep()
        # only the block that lost a row re-ran, not the whole sweep
        assert 0 < len(ran) <= good_before

    def test_header_corruption_still_fails_loudly(self, tmp_path):
        # a checkpoint whose *header* is unreadable is not salvageable —
        # rows cannot be attributed to a configuration
        path = tmp_path / "ck.jsonl"
        _sweep(str(path))
        raw = path.read_bytes().splitlines(keepends=True)
        raw[0] = b"\x00\x01\x02 garbage\n"
        path.write_bytes(b"".join(raw))
        with pytest.raises(ValueError, match="not a sweep checkpoint"):
            _sweep(str(path), resume=True)
