"""Tests for the GK algorithm — the paper's contribution (Sections 4.6, 9)."""

import numpy as np
import pytest

from conftest import rand_pair
from repro.algorithms.cannon import run_cannon
from repro.algorithms.gk import gk_cube_side, run_gk, run_gk_cm5
from repro.core.machine import CM5, MachineParams
from repro.core.models import MODELS
from repro.simulator.topology import FullyConnected

MACHINE = MachineParams(ts=10.0, tw=2.0)


class TestCubeSide:
    def test_values(self):
        assert gk_cube_side(1) == 1
        assert gk_cube_side(8) == 2
        assert gk_cube_side(512) == 8

    def test_non_cube_rejected(self):
        with pytest.raises(ValueError):
            gk_cube_side(9)


class TestCorrectness:
    @pytest.mark.parametrize("n,p", [(4, 8), (8, 8), (8, 64), (16, 64), (16, 512), (32, 8)])
    def test_product_exact(self, n, p):
        A, B = rand_pair(n, seed=n + p)
        res = run_gk(A, B, p, MACHINE)
        assert np.allclose(res.C, A @ B)

    def test_uneven_blocks(self):
        A, B = rand_pair(13, seed=4)
        res = run_gk(A, B, 8, MACHINE)
        assert np.allclose(res.C, A @ B)

    def test_single_processor(self):
        A, B = rand_pair(5, seed=1)
        res = run_gk(A, B, 1, MACHINE)
        assert np.allclose(res.C, A @ B)

    def test_full_dns_range(self):
        # unlike DNS (n^2 <= p), GK runs at any p = 2^(3q) <= n^3
        A, B = rand_pair(8, seed=2)
        for p in (1, 8, 64, 512):
            assert np.allclose(run_gk(A, B, p, MACHINE).C, A @ B)

    def test_cm5_variant(self):
        A, B = rand_pair(16, seed=3)
        res = run_gk_cm5(A, B, 64)
        assert np.allclose(res.C, A @ B)
        assert res.machine is CM5

    def test_route_mode_override(self):
        A, B = rand_pair(8, seed=3)
        res = run_gk(A, B, 64, MACHINE, topology=FullyConnected(64), route_mode="relay")
        assert np.allclose(res.C, A @ B)


class TestValidation:
    def test_non_cube_p(self):
        A, B = rand_pair(8, seed=0)
        with pytest.raises(ValueError):
            run_gk(A, B, 16, MACHINE)

    def test_p_above_n_cubed(self):
        A, B = rand_pair(2, seed=0)  # n^3 = 8 < 64
        with pytest.raises(ValueError):
            run_gk(A, B, 64, MACHINE)


class TestTiming:
    @pytest.mark.parametrize("n,p", [(16, 8), (16, 64), (32, 64)])
    def test_at_or_below_eq7(self, n, p):
        # Eq. 7 sums the phases sequentially; the simulator lets phases of
        # different ranks overlap, so it can only come in at or under it.
        A, B = rand_pair(n, seed=5)
        res = run_gk(A, B, p, MACHINE)
        model = MODELS["gk"].time(n, p, MACHINE)
        assert res.parallel_time <= model * 1.02
        assert res.parallel_time >= 0.6 * model

    def test_cm5_at_or_below_eq18(self):
        n, p = 32, 64
        A, B = rand_pair(n, seed=5)
        res = run_gk_cm5(A, B, p)
        model = MODELS["gk-cm5"].time(n, p, CM5)
        assert res.parallel_time <= model * 1.02
        assert res.parallel_time >= 0.6 * model

    def test_direct_routing_beats_relay(self):
        # the CM-5's one-hop routing saves the relay steps of Eq. 7
        n, p = 16, 64
        A, B = rand_pair(n, seed=6)
        topo = FullyConnected(p)
        t_relay = run_gk(A, B, p, MACHINE, topology=topo, route_mode="relay").parallel_time
        t_direct = run_gk(A, B, p, MACHINE, topology=topo, route_mode="direct").parallel_time
        assert t_direct < t_relay


class TestPaperComparison:
    def test_gk_beats_cannon_small_n(self):
        # Figure 4 regime: below the crossover GK wins, above it Cannon wins
        p = 64
        A, B = rand_pair(32, seed=7)
        e_gk = run_gk_cm5(A, B, p).efficiency
        e_cn = run_cannon(A, B, p, CM5, topology=FullyConnected(p)).efficiency
        assert e_gk > e_cn

    def test_cannon_beats_gk_large_n(self):
        p = 64
        A, B = rand_pair(160, seed=8)
        e_gk = run_gk_cm5(A, B, p).efficiency
        e_cn = run_cannon(A, B, p, CM5, topology=FullyConnected(p)).efficiency
        assert e_cn > e_gk
