"""Collectives over subgroups: groups smaller than the machine, concurrent
disjoint groups, and group orderings that are not contiguous ranks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine import MachineParams
from repro.simulator.collectives import (
    allgather_recursive_doubling,
    allgather_ring,
    bcast_binomial,
    reduce_binomial,
    shift_cyclic,
)
from repro.simulator.engine import run_spmd
from repro.simulator.topology import FullyConnected, Hypercube

M = MachineParams(ts=10.0, tw=2.0)


def run_in_groups(p, groups, body):
    """Each rank participates in the (single) group containing it."""
    owner = {}
    for g in groups:
        for r in g:
            owner[r] = g

    def factory(info):
        def prog():
            if info.rank not in owner:
                return None
            out = yield from body(info, owner[info.rank])
            return out

        return prog()

    return run_spmd(FullyConnected(p), M, factory)


class TestSubgroups:
    def test_bcast_on_strict_subgroup(self):
        # only ranks 2..5 participate; the rest finish immediately
        def body(info, group):
            data = "x" if info.rank == group[0] else None
            out = yield from bcast_binomial(info, group, 0, data)
            return out

        res = run_in_groups(8, [[2, 3, 4, 5]], body)
        assert res.returns[2:6] == ["x"] * 4
        assert res.returns[0] is None and res.returns[6] is None
        assert res.stats[0].finish_time == 0.0

    def test_concurrent_disjoint_groups(self):
        # two groups run the same collective simultaneously without cross-talk
        def body(info, group):
            out = yield from allgather_recursive_doubling(info, group, info.rank)
            return tuple(out)

        res = run_in_groups(8, [[0, 1, 2, 3], [4, 5, 6, 7]], body)
        assert res.returns[0] == (0, 1, 2, 3)
        assert res.returns[7] == (4, 5, 6, 7)

    def test_interleaved_group_membership(self):
        # groups need not be contiguous: even and odd ranks
        def body(info, group):
            out = yield from allgather_ring(info, group, info.rank * 10)
            return tuple(out)

        res = run_in_groups(8, [[0, 2, 4, 6], [1, 3, 5, 7]], body)
        assert res.returns[4] == (0, 20, 40, 60)
        assert res.returns[3] == (10, 30, 50, 70)

    def test_reversed_group_order(self):
        # group order defines the ring direction, not rank order
        def body(info, group):
            got = yield from shift_cyclic(info, group, 1, info.rank)
            return got

        res = run_in_groups(4, [[3, 2, 1, 0]], body)
        # index of rank r in group is 3-r; sender to index+1 => rank r receives
        # from group[(3-r)-1] = rank r+1
        assert res.returns == [1, 2, 3, 0]

    def test_subcube_group_inside_bigger_hypercube(self):
        # a subcube group of a larger hypercube still gets single-hop steps
        group = [8, 9, 10, 11]  # subcube: ranks differing in low 2 bits

        def factory(info):
            def prog():
                if info.rank not in group:
                    return None
                data = np.zeros(10) if info.rank == 8 else None
                out = yield from bcast_binomial(info, group, 0, data)
                return out.size

            return prog()

        res = run_spmd(Hypercube(4), M, factory)
        assert [res.returns[r] for r in group] == [10] * 4
        # exactly log2(4) = 2 message steps of (ts + tw*10)
        busy = [res.stats[r].finish_time for r in group]
        assert max(busy) == pytest.approx(2 * (M.ts + 10 * M.tw))


@settings(max_examples=25, deadline=None)
@given(
    p=st.sampled_from([4, 8, 16]),
    offset=st.integers(min_value=-5, max_value=5),
    data=st.data(),
)
def test_shift_on_random_subgroup(p, offset, data):
    size = data.draw(st.integers(min_value=1, max_value=p))
    members = data.draw(
        st.lists(st.integers(min_value=0, max_value=p - 1), min_size=size,
                 max_size=size, unique=True)
    )

    def body(info, group):
        got = yield from shift_cyclic(info, group, offset, info.rank)
        return got

    res = run_in_groups(p, [members], body)
    g = len(members)
    for idx, r in enumerate(members):
        assert res.returns[r] == members[(idx - offset) % g]
