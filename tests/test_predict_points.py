"""Batched prediction (`predict_points` / `winner_details_at_points`).

The serving layer's correctness rests on two properties pinned here:

* the batched scan decides winners exactly like the dense
  ``winner_grid`` (same tie rule: model_keys order, strict improvement
  only), and adding runner-up tracking did not perturb it;
* a point's record is *identical* — same floats, bit for bit — whether
  it was evaluated alone or inside any batch, because every value comes
  from the same elementwise expressions.
"""

import numpy as np
import pytest

from repro.core.machine import NCUBE2_LIKE, PRESETS, MachineParams
from repro.core.models import COMPARISON_MODELS, MODELS
from repro.core.prediction import predict, predict_points, prediction_counts
from repro.core.refine import winner_at_points, winner_details_at_points
from repro.core.regions import winner_grid

MACHINES = [PRESETS[k] for k in ("ncube2-like", "future-mimd", "simd-cm2-like", "cm5")]


def _random_points(count, seed):
    rng = np.random.default_rng(seed)
    n = 2.0 ** rng.uniform(0.0, 16.0, size=count)
    p = 2.0 ** rng.uniform(0.0, 30.0, size=count)
    return n, p


class TestWinnerDetails:
    def test_empty_batch(self):
        winner, gap, runner_up, best_to = winner_details_at_points(
            NCUBE2_LIKE, [], []
        )
        assert winner.size == gap.size == runner_up.size == best_to.size == 0

    def test_single_point(self):
        winner, gap, runner_up, best_to = winner_details_at_points(
            NCUBE2_LIKE, [256.0], [64.0]
        )
        assert winner.shape == (1,)
        k = len(COMPARISON_MODELS)
        assert 0 <= winner[0] < k
        assert 0 <= runner_up[0] <= k
        assert winner[0] != runner_up[0]
        assert np.isfinite(best_to[0])

    def test_duplicate_points_get_identical_answers(self):
        n = np.array([512.0, 512.0, 512.0])
        p = np.array([1024.0, 1024.0, 1024.0])
        winner, gap, runner_up, best_to = winner_details_at_points(NCUBE2_LIKE, n, p)
        assert len(set(winner.tolist())) == 1
        assert len(set(runner_up.tolist())) == 1
        assert len(set(best_to.tolist())) == 1

    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    def test_matches_dense_winner_grid(self, machine):
        n_values = tuple(float(2**k) for k in range(0, 17))
        p_values = tuple(float(2**k) for k in range(0, 31))
        dense = winner_grid(machine, n_values, p_values)
        nn, pp = np.meshgrid(n_values, p_values, indexing="ij")
        winner, _ = winner_at_points(machine, nn, pp)
        assert np.array_equal(winner, dense)

    def test_tie_rule_earliest_key_on_all_tie_machine(self):
        # with no communication cost every model's overhead collapses to
        # the same value wherever all apply: the scan must keep the
        # first applicable key in model_keys order at every such point
        zero = MachineParams(ts=0.0, tw=0.0, name="zero")
        n = np.full(8, 4096.0)
        p = np.full(8, 16.0)
        winner, gap, runner_up, _ = winner_details_at_points(zero, n, p)
        applicable = [
            i for i, key in enumerate(COMPARISON_MODELS)
            if bool(MODELS[key].applicable_grid(n[:1], p[:1])[0])
        ]
        assert winner.tolist() == [applicable[0]] * 8
        # the runner-up tie falls the same way: earliest remaining key
        assert runner_up.tolist() == [applicable[1]] * 8

    def test_runner_up_against_brute_force(self):
        n, p = _random_points(50, seed=3)
        winner, _, runner_up, best_to = winner_details_at_points(NCUBE2_LIKE, n, p)
        k = len(COMPARISON_MODELS)
        for i in range(50):
            cands = []
            for j, key in enumerate(COMPARISON_MODELS):
                if not bool(MODELS[key].applicable_grid(n[i : i + 1], p[i : i + 1])[0]):
                    continue
                with np.errstate(over="ignore", invalid="ignore"):
                    to = float(
                        np.asarray(
                            MODELS[key].overhead_grid(n[i : i + 1], p[i : i + 1], NCUBE2_LIKE)
                        ).ravel()[0]
                    )
                cands.append((to, j))
            cands.sort()  # ties broken by index, mirroring the scan
            expect_w = cands[0][1] if cands else k
            expect_r = cands[1][1] if len(cands) > 1 else k
            assert int(winner[i]) == expect_w
            assert int(runner_up[i]) == expect_r
            if cands:
                assert float(best_to[i]) == cands[0][0]

    def test_winner_gap_unperturbed_by_runner_up_tracking(self):
        # winner_at_points delegates to the detailed scan; its results
        # must match an independent minimal reimplementation bit for bit
        n, p = _random_points(200, seed=11)
        winner, gap = winner_at_points(NCUBE2_LIKE, n, p)
        best = np.full(n.shape, np.inf)
        second = np.full(n.shape, np.inf)
        ref = np.full(n.shape, len(COMPARISON_MODELS), dtype=np.intp)
        with np.errstate(over="ignore", invalid="ignore"):
            for i, key in enumerate(COMPARISON_MODELS):
                to = np.broadcast_to(
                    MODELS[key].overhead_grid(n, p, NCUBE2_LIKE), n.shape
                )
                ok = np.broadcast_to(MODELS[key].applicable_grid(n, p), n.shape)
                cand = np.where(ok, to, np.inf)
                better = cand < best
                second = np.where(better, best, np.minimum(second, cand))
                ref = np.where(better, i, ref)
                best = np.where(better, cand, best)
            ref_gap = np.where(
                np.isfinite(second),
                (second - best) / np.maximum(np.abs(best), 1.0),
                np.inf,
            )
        assert np.array_equal(winner, ref)
        assert np.array_equal(gap, ref_gap, equal_nan=True)


class TestPredictPoints:
    def test_empty_batch(self):
        batch = predict_points(NCUBE2_LIKE, [], [])
        assert len(batch) == 0
        assert batch.overhead_split == ()

    def test_single_point_record_shape(self):
        batch = predict_points(NCUBE2_LIKE, [256.0], [64.0])
        rec = batch.point(0)
        assert rec["algorithm"] in COMPARISON_MODELS
        assert rec["runner_up"] in COMPARISON_MODELS
        assert rec["algorithm"] != rec["runner_up"]
        assert rec["predicted_time"] > 0
        assert 0 < rec["predicted_efficiency"] <= 1
        assert rec["overhead_split"]  # winner's named terms present
        # the record round-trips through strict JSON (no inf/nan)
        import json

        json.dumps(rec, allow_nan=False)

    def test_batched_records_bit_identical_to_singletons(self):
        # the coalescer's contract: evaluating a point inside any batch
        # yields the same record — same floats — as evaluating it alone
        for seed in range(5):
            n, p = _random_points(64, seed=seed)
            batch = predict_points(NCUBE2_LIKE, n, p)
            for i in np.random.default_rng(seed).choice(64, size=8, replace=False):
                single = predict_points(NCUBE2_LIKE, [n[i]], [p[i]])
                assert batch.point(int(i)) == single.point(0)

    def test_mixed_machine_batches_differ(self):
        # one scan is valid for one machine only: the same points on two
        # machines may pick different winners (why the batcher groups by
        # machine fingerprint instead of coalescing across machines)
        n_values = tuple(float(2**k) for k in range(0, 17))
        p_values = tuple(float(2**k) for k in range(0, 31))
        a = winner_grid(PRESETS["ncube2-like"], n_values, p_values)
        b = winner_grid(PRESETS["simd-cm2-like"], n_values, p_values)
        assert not np.array_equal(a, b)

    def test_agrees_with_scalar_predict(self):
        # the scalar path computes T_p as compute + comm while the batch
        # derives it from the overhead identity (W + T_o)/p — equal
        # mathematically, compared with tolerance, not bitwise
        n, p = _random_points(32, seed=9)
        batch = predict_points(NCUBE2_LIKE, n, p)
        for i in range(32):
            key = batch.key_at(i)
            if key is None:
                continue
            scalar = predict(key, float(n[i]), float(p[i]), NCUBE2_LIKE)
            rec = batch.point(i)
            if rec["predicted_time"] is not None and np.isfinite(scalar["parallel_time"]):
                assert np.isclose(
                    rec["predicted_time"], scalar["parallel_time"], rtol=1e-9
                )

    def test_sentinel_points_serialize_as_none(self):
        # p far above every model's applicability: no winner anywhere
        batch = predict_points(NCUBE2_LIKE, [2.0], [2.0**40])
        rec = batch.point(0)
        assert rec["algorithm"] is None
        assert rec["overhead"] is None
        assert rec["overhead_split"] == {}

    def test_prediction_counters_advance(self):
        before = prediction_counts()
        predict_points(NCUBE2_LIKE, [4.0, 8.0], [4.0, 4.0])
        after = prediction_counts()
        assert after["calls"] == before["calls"] + 1
        assert after["points"] == before["points"] + 2

    def test_broadcasting_scalar_p(self):
        batch = predict_points(NCUBE2_LIKE, [16.0, 32.0, 64.0], [256.0])
        assert len(batch) == 3
        assert all(batch.point(i)["p"] == 256.0 for i in range(3))
