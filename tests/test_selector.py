"""Tests for the Section 10 algorithm selector."""

import numpy as np
import pytest

from conftest import rand_pair
from repro.core.machine import NCUBE2_LIKE, SIMD_CM2_LIKE
from repro.core.selector import select, select_and_run


class TestSelect:
    def test_picks_min_time(self):
        s = select(128, 64, NCUBE2_LIKE)
        times = dict(s.ranking)
        assert s.predicted_time == min(times.values())
        assert s.key in times

    def test_ranking_sorted(self):
        s = select(128, 64, NCUBE2_LIKE)
        times = [t for _, t in s.ranking]
        assert times == sorted(times)

    def test_matches_region_analysis(self):
        from repro.core.regions import best_algorithm

        for n, p in ((64, 512), (256, 64), (64, 2**14)):
            s = select(n, p, SIMD_CM2_LIKE)
            assert s.key == best_algorithm(n, p, SIMD_CM2_LIKE)

    def test_no_candidates_raises(self):
        with pytest.raises(ValueError):
            select(4, 1000, NCUBE2_LIKE)  # p > n^3

    def test_require_feasible_changes_choice(self):
        # continuous winner may be infeasible for this exact (n, p)
        s_any = select(100, 64, NCUBE2_LIKE)
        s_feas = select(100, 64, NCUBE2_LIKE, require_feasible=True)
        # both succeed; the feasible one must really be runnable
        from repro.algorithms import registry

        assert registry.get(s_feas.key).feasible(100, 64)
        assert s_any.predicted_time <= s_feas.predicted_time + 1e-9

    def test_predicted_efficiency(self):
        s = select(128, 64, NCUBE2_LIKE)
        assert 0 < s.predicted_efficiency <= 1


class TestSelectAndRun:
    def test_runs_winner_and_verifies(self):
        A, B = rand_pair(32, seed=1)
        selection, result = select_and_run(A, B, 64, NCUBE2_LIKE)
        assert np.allclose(result.C, A @ B)
        assert result.algorithm.startswith(selection.key[:3])

    def test_prediction_close_to_simulation(self):
        A, B = rand_pair(64, seed=2)
        selection, result = select_and_run(A, B, 64, NCUBE2_LIKE)
        # phase-summed models bound the simulator from above (within ~30%)
        assert result.parallel_time <= selection.predicted_time * 1.1
        assert result.parallel_time >= selection.predicted_time * 0.5
