"""Tests for deterministic fault injection and recovery modeling.

The load-bearing property is at the top: a zero-rate :class:`FaultPlan`
is *exactly* free.  Every engine hook returns its input unchanged when
nothing fires, so ``fault_plan=FaultPlan()`` must be bit-identical —
clocks, per-rank stats, return values — to running with no plan at all,
on arbitrary fuzzed schedules, under both schedulers, and through the
macro collective fast path (which a plan bypasses in favor of the
reference scheduler).  The rest pins the fault semantics themselves:
crash/rollback accounting, drop/retransmit charging, checkpoint cadence,
and same-seed replay.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine import CM5, MachineParams
from repro.simulator import (
    Checkpoint,
    Compute,
    DeadlockError,
    FaultPlan,
    FullyConnected,
    RankCrashError,
    Recv,
    Send,
    UnrecoverableFaultError,
    retransmit_backoff_delay,
    run_spmd,
)
from repro.simulator.engine import Engine

from test_engine_fuzz import _build_schedule, _factory_for

M = MachineParams(ts=10.0, tw=2.0)


def _single(*requests):
    """Factories for a run where rank 0 issues *requests* and rank 1 idles."""

    def rank0(info):
        def body():
            for req in requests:
                yield req

        return body()

    def rank1(info):
        def body():
            return None
            yield

        return body()

    return [rank0, rank1]


# -- plan validation ----------------------------------------------------------------


@pytest.mark.parametrize(
    ("kwargs", "fragment"),
    [
        ({"drop_rate": 1.5}, "probability"),
        ({"straggler_rate": -0.1}, "probability"),
        ({"crash_rate": -1.0}, "crash_rate"),
        ({"crash_rate": 0.5}, "horizon"),
        ({"horizon": -1.0}, "horizon"),
        ({"crash_times": ((0, 5.0),), "horizon": 1.0}, "beyond horizon"),
        ({"crash_times": ((0, -2.0),), "horizon": 10.0}, "must be > 0"),
        ({"crash_times": (("x", 2.0),), "horizon": 10.0}, "non-negative ints"),
        ({"straggler_factor": 0.5}, "straggler_factor"),
        ({"degrade_factor": 0.0}, "degrade_factor"),
        ({"drop_rate": 0.1}, "timeout"),
        ({"drop_rate": 0.1, "timeout": -1.0}, "timeout"),
        ({"backoff": 0.5}, "backoff"),
        ({"max_retries": -1}, "max_retries"),
        ({"checkpoint_interval": 0.0}, "checkpoint_interval"),
        ({"checkpoint_cost": -1.0}, "checkpoint_cost"),
        ({"recovery_cost": -1.0}, "recovery_cost"),
        # non-finite values: every numeric field must reject nan/inf at
        # construction rather than poisoning a schedule downstream
        ({"drop_rate": float("nan")}, "probability"),
        ({"straggler_rate": float("inf")}, "probability"),
        ({"crash_rate": float("nan")}, "crash_rate"),
        ({"horizon": float("inf")}, "horizon"),
        ({"straggler_factor": float("nan")}, "straggler_factor"),
        ({"degrade_factor": float("inf")}, "degrade_factor"),
        ({"drop_rate": 0.1, "timeout": float("inf")}, "timeout"),
        ({"backoff": float("nan")}, "backoff"),
        ({"checkpoint_interval": float("inf")}, "checkpoint_interval"),
        ({"checkpoint_cost": float("nan")}, "checkpoint_cost"),
        ({"recovery_cost": float("inf")}, "recovery_cost"),
        ({"crash_times": ((0, float("nan")),), "horizon": 10.0}, "must be > 0"),
        # wrong types and shapes
        ({"seed": 1.0}, "seed"),
        ({"seed": True}, "seed"),
        ({"max_retries": True}, "max_retries"),
        ({"max_retries": 2.0}, "max_retries"),
        ({"crash_times": ((0,), ), "horizon": 10.0}, r"\(rank, time\) pairs"),
        ({"crash_times": ((0, 5.0, 1.0),), "horizon": 10.0}, r"\(rank, time\) pairs"),
        ({"crash_times": ([0, 5.0],), "horizon": 10.0}, r"\(rank, time\) pairs"),
        ({"crash_times": ((True, 5.0),), "horizon": 10.0}, "non-negative ints"),
    ],
)
def test_plan_validation(kwargs, fragment):
    with pytest.raises(ValueError, match=fragment):
        FaultPlan(**kwargs)


def test_compile_rejects_out_of_range_rank():
    plan = FaultPlan(horizon=10.0, crash_times=((4, 5.0),), checkpoint_interval=100.0)
    with pytest.raises(ValueError, match="only 2 ranks"):
        plan.compile(2)


def test_is_null():
    assert FaultPlan().is_null
    assert FaultPlan(seed=7, timeout=5.0).is_null  # knobs without rates stay null
    assert not FaultPlan(drop_rate=0.1, timeout=1.0).is_null
    assert not FaultPlan(checkpoint_interval=10.0).is_null


# -- zero-rate exactness (the bit-identity contract) --------------------------------


def _result_fingerprint(res):
    return (
        res.parallel_time,
        res.stats,
        res.returns,
        res.total_messages,
        res.total_words,
        res.retransmits,
        res.faults_injected,
        res.checkpoint_time,
        res.recovery_time,
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    p=st.sampled_from([2, 4, 8]),
    nops=st.integers(min_value=1, max_value=50),
    ts=st.floats(min_value=0.0, max_value=100.0),
    barriers=st.booleans(),
    scheduler=st.sampled_from(["ready", "rescan"]),
)
def test_null_plan_is_bit_identical_fuzz(seed, p, nops, ts, barriers, scheduler):
    """fault_plan=FaultPlan() must not move a single bit of any clock.

    The null plan forces the reference (rescan) scheduler, so this also
    re-proves scheduler equivalence through the fault-hook call sites.
    """
    rng = np.random.default_rng(seed)
    ops = _build_schedule(rng, p, nops, barriers=barriers)
    machine = MachineParams(ts=ts, tw=1.7, th=0.3)
    plain = Engine(FullyConnected(p), machine, scheduler=scheduler).run(_factory_for(ops))
    faulted = Engine(
        FullyConnected(p), machine, scheduler=scheduler, fault_plan=FaultPlan()
    ).run(_factory_for(ops))
    assert _result_fingerprint(plain) == _result_fingerprint(faulted)


def test_null_plan_matches_macro_fast_path_on_cm5_configs():
    """The Fig 4/5 CM-5 drivers run the macro collective fast path; with a
    null plan they fall back to the message path and must agree exactly."""
    from repro.algorithms.cannon import run_cannon
    from repro.algorithms.gk import run_gk_cm5

    rng = np.random.default_rng(0)
    n, p = 16, 64
    A, B = rng.standard_normal((n, n)), rng.standard_normal((n, n))
    for run in (run_cannon, run_gk_cm5):
        plain = run(A, B, p, CM5)
        faulted = run(A, B, p, CM5, fault_plan=FaultPlan())
        assert plain.parallel_time == faulted.parallel_time
        assert plain.sim.stats == faulted.sim.stats
        np.testing.assert_array_equal(plain.C, faulted.C)
        assert faulted.sim.faults_injected == 0


def test_same_seed_same_faults():
    plan = FaultPlan(seed=3, drop_rate=0.4, timeout=5.0, straggler_rate=0.5,
                     straggler_factor=2.0)
    rng = np.random.default_rng(1)
    ops = _build_schedule(rng, 4, 30)
    r1 = run_spmd(FullyConnected(4), M, _factory_for(ops), fault_plan=plan)
    r2 = run_spmd(FullyConnected(4), M, _factory_for(ops), fault_plan=plan)
    assert _result_fingerprint(r1) == _result_fingerprint(r2)


# -- stragglers and degraded links --------------------------------------------------


def test_straggler_scales_compute():
    base = run_spmd(FullyConnected(2), M, _single(Compute(100.0)))
    slow = run_spmd(
        FullyConnected(2), M, _single(Compute(100.0)),
        fault_plan=FaultPlan(straggler_rate=1.0, straggler_factor=3.0),
    )
    assert slow.parallel_time == 3.0 * base.parallel_time


def test_degraded_link_scales_transfers():
    def rank1(info):
        def body():
            yield Recv(src=0)

        return body()

    factories = [_single(Send(dst=1, data=None, nwords=50))[0], rank1]
    base = run_spmd(FullyConnected(2), M, factories)
    degraded = run_spmd(
        FullyConnected(2), M, factories,
        fault_plan=FaultPlan(degrade_rate=1.0, degrade_factor=4.0),
    )
    assert degraded.parallel_time > base.parallel_time
    assert degraded.faults_injected == 0  # a slow link is a factor, not an event


# -- drops and retransmission -------------------------------------------------------


def _pair_message(nwords=20):
    def rank0(info):
        def body():
            yield Send(dst=1, data="payload", nwords=nwords)

        return body()

    def rank1(info):
        def body():
            got = yield Recv(src=0)
            return got

        return body()

    return [rank0, rank1]


def test_drops_charge_retransmits():
    # seed chosen so the single message suffers at least one drop
    plan = FaultPlan(seed=2, drop_rate=0.7, timeout=5.0)
    drops = plan.drops_for(0, 1, 0, 0)
    assert drops >= 1
    base = run_spmd(FullyConnected(2), M, _pair_message())
    res = run_spmd(FullyConnected(2), M, _pair_message(), fault_plan=plan)
    assert res.retransmits == drops
    assert res.faults_injected == drops
    busy = M.sender_busy_time(20)
    expected_delay = drops * busy + retransmit_backoff_delay(5.0, 2.0, drops)
    assert res.parallel_time == pytest.approx(base.parallel_time + expected_delay)
    assert res.returns[1] == "payload"  # the payload still arrives intact


def test_drops_for_is_pure():
    plan = FaultPlan(seed=9, drop_rate=0.5, timeout=1.0)
    draws = [plan.drops_for(3, 4, 7, s) for s in range(20)]
    assert draws == [plan.drops_for(3, 4, 7, s) for s in range(20)]
    assert any(draws)  # at rate 0.5, twenty messages include a drop


def test_unrecoverable_link_raises():
    plan = FaultPlan(drop_rate=1.0, timeout=1.0, max_retries=3)
    with pytest.raises(UnrecoverableFaultError, match="max_retries=3"):
        run_spmd(FullyConnected(2), M, _pair_message(), fault_plan=plan)


def test_retransmit_backoff_delay_accumulates():
    assert retransmit_backoff_delay(10.0, 2.0, 3) == 70.0  # 10 + 20 + 40
    assert retransmit_backoff_delay(10.0, 1.0, 4) == 40.0
    assert retransmit_backoff_delay(10.0, 2.0, 0) == 0.0


# -- crashes, checkpoints, recovery -------------------------------------------------


def test_crash_without_checkpoint_is_fatal():
    plan = FaultPlan(horizon=200.0, crash_times=((0, 150.0),))
    with pytest.raises(RankCrashError, match="rank 0"):
        run_spmd(FullyConnected(2), M, _single(Compute(200.0)), fault_plan=plan)


def test_crash_rolls_back_to_last_checkpoint():
    plan = FaultPlan(
        horizon=200.0, crash_times=((0, 150.0),),
        checkpoint_interval=1000.0, recovery_cost=20.0,
    )
    res = run_spmd(FullyConnected(2), M, _single(Compute(200.0)), fault_plan=plan)
    # crash at t=150 loses all work since the free t=0 checkpoint:
    # penalty = 20 recovery + 150 lost, so the rank finishes at 370
    assert res.parallel_time == 370.0
    assert res.recovery_time == 170.0
    assert res.faults_injected == 1


def test_explicit_checkpoint_rescues_crash():
    plan = FaultPlan(horizon=200.0, crash_times=((0, 150.0),), recovery_cost=20.0)
    res = run_spmd(
        FullyConnected(2), M,
        _single(Compute(100.0), Checkpoint(), Compute(100.0)),
        fault_plan=plan,
    )
    # checkpointed at t=100, so the t=150 crash loses only 50
    assert res.parallel_time == 270.0
    assert res.recovery_time == 70.0


def test_periodic_checkpoints_charged_on_local_clock():
    plan = FaultPlan(checkpoint_interval=50.0, checkpoint_cost=5.0)
    res = run_spmd(FullyConnected(2), M, _single(Compute(100.0)), fault_plan=plan)
    # boundaries at 50 and (after the first charge) 105 both land in range
    assert res.parallel_time == 110.0
    assert res.checkpoint_time == 10.0
    assert res.faults_injected == 0  # checkpoints are insurance, not faults


def test_checkpoint_request_is_free_without_plan():
    base = run_spmd(FullyConnected(2), M, _single(Compute(40.0)))
    with_req = run_spmd(
        FullyConnected(2), M, _single(Compute(40.0), Checkpoint(), Checkpoint())
    )
    assert with_req.parallel_time == base.parallel_time
    assert with_req.checkpoint_time == 0.0


def test_deadlock_report_includes_fault_history():
    def rank0(info):
        def body():
            yield Compute(100.0)
            yield Recv(src=1)  # never sent — deadlock after the crash

        return body()

    def rank1(info):
        def body():
            return None
            yield

        return body()

    plan = FaultPlan(
        horizon=100.0, crash_times=((0, 50.0),),
        checkpoint_interval=1000.0, recovery_cost=5.0,
    )
    with pytest.raises(DeadlockError, match="rank 0 crashed at t=50") as exc:
        run_spmd(FullyConnected(2), M, [rank0, rank1], fault_plan=plan)
    assert any("crashed" in line for line in exc.value.fault_history)


def test_default_result_fault_fields_are_zero():
    res = run_spmd(FullyConnected(2), M, _single(Compute(10.0)))
    assert (res.retransmits, res.faults_injected) == (0, 0)
    assert (res.checkpoint_time, res.recovery_time) == (0.0, 0.0)
