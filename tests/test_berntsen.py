"""Tests for Berntsen's algorithm (Section 4.4)."""

import numpy as np
import pytest

from conftest import rand_pair
from repro.algorithms.berntsen import berntsen_max_procs, run_berntsen
from repro.core.machine import MachineParams
from repro.core.models import MODELS

MACHINE = MachineParams(ts=10.0, tw=2.0)


class TestMaxProcs:
    def test_values(self):
        assert berntsen_max_procs(4) == 8
        assert berntsen_max_procs(16) == 64
        assert berntsen_max_procs(64) == 512
        assert berntsen_max_procs(3) == 1

    def test_restriction_holds(self):
        for n in (4, 9, 16, 33, 100):
            p = berntsen_max_procs(n)
            assert p**2 <= n**3 < (8 * p) ** 2


class TestCorrectness:
    @pytest.mark.parametrize("n,p", [(4, 8), (8, 8), (16, 64), (32, 64)])
    def test_product_exact(self, n, p):
        A, B = rand_pair(n, seed=n + p)
        res = run_berntsen(A, B, p, MACHINE, enforce_concurrency_limit=False)
        assert np.allclose(res.C, A @ B)

    def test_uneven_blocks(self):
        A, B = rand_pair(21, seed=4)
        res = run_berntsen(A, B, 64, MACHINE, enforce_concurrency_limit=False)
        assert np.allclose(res.C, A @ B)

    def test_single_processor(self):
        A, B = rand_pair(5, seed=1)
        res = run_berntsen(A, B, 1, MACHINE)
        assert np.allclose(res.C, A @ B)

    def test_within_concurrency_limit(self):
        A, B = rand_pair(16, seed=2)  # n^(3/2) = 64
        res = run_berntsen(A, B, 64, MACHINE)
        assert np.allclose(res.C, A @ B)


class TestValidation:
    def test_non_cube_p_rejected(self):
        A, B = rand_pair(16, seed=0)
        with pytest.raises(ValueError):
            run_berntsen(A, B, 16, MACHINE)

    def test_concurrency_limit_enforced(self):
        A, B = rand_pair(8, seed=0)  # n^(3/2) ~ 22.6 < 64
        with pytest.raises(ValueError):
            run_berntsen(A, B, 64, MACHINE)

    def test_block_formation_limit(self):
        A, B = rand_pair(3, seed=0)  # p^(2/3) = 4 > 3
        with pytest.raises(ValueError):
            run_berntsen(A, B, 8, MACHINE, enforce_concurrency_limit=False)


class TestTiming:
    def test_close_to_eq5(self):
        n, p = 32, 64
        A, B = rand_pair(n, seed=5)
        res = run_berntsen(A, B, p, MACHINE, enforce_concurrency_limit=False)
        model = MODELS["berntsen"].time(n, p, MACHINE)
        # Eq. 5 is a phase-summed upper bound (and counts 2^q rolls for 2^q - 1)
        assert res.parallel_time <= model * 1.05
        assert res.parallel_time >= 0.5 * model

    def test_lowest_communication_of_applicable(self):
        # Section 10: Berntsen's is "the best algorithm in terms of
        # communication overheads" where applicable
        from repro.algorithms.cannon import run_cannon

        n, p = 16, 64
        A, B = rand_pair(n, seed=6)
        t_b = run_berntsen(A, B, p, MACHINE).parallel_time
        t_c = run_cannon(A, B, p, MACHINE).parallel_time
        assert t_b < t_c

    def test_compute_time_close_to_work(self):
        n, p = 16, 64
        A, B = rand_pair(n, seed=5)
        res = run_berntsen(A, B, p, MACHINE)
        # reduce-scatter adds are extra work beyond the n^3 multiply-adds
        assert n**3 <= res.sim.total_compute_time <= n**3 + 2 * n * n * np.log2(p)
