"""Consolidated checklist of the paper's quantitative claims.

One test per claim, quoting the paper's sentence it verifies.  These
intentionally overlap with module-level tests — this file is the
section-by-section audit trail.
"""

import math

import numpy as np
import pytest

from conftest import rand_pair
from repro.core.crossover import (
    dns_beats_gk_max_procs,
    equal_overhead_n,
    gk_cannon_tw_cutoff,
)
from repro.core.isoefficiency import fit_growth_exponent, isoefficiency
from repro.core.machine import (
    CM5,
    FUTURE_MIMD,
    NCUBE2_LIKE,
    SIMD_CM2_LIKE,
    MachineParams,
)
from repro.core.models import MODELS
from repro.core.regions import best_algorithm, region_map
from repro.core.technology import (
    work_growth_for_faster_processors,
    work_growth_for_more_processors,
)


class TestSection4:
    def test_4_1_simple_memory_inefficient(self):
        """'The memory requirement for each processor is O(n^2/sqrt(p)) and
        thus the total memory requirement is O(n^2 sqrt(p)) words.'"""
        from repro.core.memory import MEMORY_MODELS

        m = MEMORY_MODELS["simple"]
        n = 256.0
        totals = [m.total_words(n, p) for p in (16.0, 64.0, 256.0)]
        ratios = [b / a for a, b in zip(totals, totals[1:])]
        assert all(r == pytest.approx(2.0, rel=0.15) for r in ratios)  # sqrt(4x)=2x

    def test_4_3_fox_worse_than_cannon(self):
        """'Clearly the parallel execution time of this algorithm is worse
        than that of the simple algorithm or Cannon's algorithm.'"""
        for n, p in ((64, 16), (256, 64)):
            assert MODELS["fox"].time(n, p, NCUBE2_LIKE) > MODELS["cannon"].time(
                n, p, NCUBE2_LIKE
            )

    def test_4_4_berntsen_terms_smaller_than_cannon(self):
        """'The terms associated with both ts and tw are smaller in this
        algorithm than the algorithms discussed in Sections 4.1 to 4.2.'"""
        n, p = 256.0, 64.0
        b = MODELS["berntsen"].overhead_terms(n, p, NCUBE2_LIKE)
        c = MODELS["cannon"].overhead_terms(n, p, NCUBE2_LIKE)
        assert b["ts_cannon"] + b["ts_reduce"] < c["ts"]
        assert b["tw"] < c["tw"]

    def test_4_5_dns_log_time_at_full_concurrency(self):
        """'The above algorithm accomplishes the O(n^3) task of matrix
        multiplication in O(log n) time using n^3 processors.'"""
        from repro.algorithms.dns import run_dns_one_per_element

        times = {}
        for n in (2, 4, 8):
            A, B = rand_pair(n, seed=n)
            times[n] = run_dns_one_per_element(A, B, MachineParams(ts=1.0, tw=1.0)).parallel_time
        # time grows ~ log n: quadrupling n far less than doubles the time
        assert times[8] / times[2] < 3.0

    def test_4_6_gk_usable_at_any_p(self):
        """'Unlike the DNS algorithm which works only for n^2 <= p <= n^3,
        this algorithm can use any number of processors from 1 to n^3.'"""
        assert MODELS["gk"].applicable(8, 1)
        assert MODELS["gk"].applicable(8, 512)
        assert not MODELS["dns"].applicable(8, 32)  # below n^2
        assert MODELS["dns"].applicable(8, 64)


class TestSection5:
    def test_5_1_cannon_p_to_1_5(self):
        """'The asymptotic isoefficiency function of Cannon's algorithm is
        O(p^1.5).'"""
        ps = [2.0**k for k in range(12, 40, 4)]
        ws = [isoefficiency(MODELS["cannon"], p, NCUBE2_LIKE, 0.5) for p in ps]
        assert fit_growth_exponent(ps, ws) == pytest.approx(1.5, abs=0.05)

    def test_5_2_berntsen_p_squared_despite_cheap_comm(self):
        """'Thus this algorithm has a poor scalability despite little
        communication cost due to its limited concurrency.'"""
        p = 2.0**24
        w = isoefficiency(MODELS["berntsen"], p, NCUBE2_LIKE, 0.5)
        assert w == pytest.approx(p**2)  # concurrency bound, not comm, binds

    def test_5_3_dns_efficiency_bound(self):
        """'An efficiency higher than 1/(1 + 2(ts + tw)) can not be
        attained, no matter how big the problem size is.'"""
        cap = MODELS["dns"].max_efficiency(NCUBE2_LIKE)
        assert cap == pytest.approx(1 / (1 + 2 * 153))
        for n in (1e2, 1e4, 1e6):
            for r in (2.0, 8.0):
                e = MODELS["dns"].efficiency(n, r * n * n, NCUBE2_LIKE)
                assert e < cap

    def test_5_3_dns_p_log_p_is_optimal(self):
        """'The asymptotic isoefficiency function of the DNS algorithm on a
        hypercube is O(p log p)' - the lower bound for any formulation."""
        m = MachineParams(ts=0.05, tw=0.05)
        ps = [2.0**k for k in range(12, 40, 4)]
        ws = [isoefficiency(MODELS["dns"], p, m, 0.3) for p in ps]
        assert fit_growth_exponent(ps, ws, log_power=1) == pytest.approx(1.0, abs=0.05)

    def test_5_4_gk_p_log_cubed(self):
        """Eqs. 13-14: GK's isoefficiency is O(p (log p)^3) via the tw term."""
        ps = [2.0**k for k in range(12, 44, 4)]
        ws = [isoefficiency(MODELS["gk"], p, NCUBE2_LIKE, 0.5) for p in ps]
        assert fit_growth_exponent(ps, ws, log_power=3) == pytest.approx(1.0, abs=0.11)

    def test_5_4_1_improved_gk_effective_p_log_1_5(self):
        """'The effective isoefficiency function of the GK algorithm with
        Johnsson's ... scheme ... is only O(p (log p)^1.5).'"""
        ps = [2.0**k for k in range(16, 44, 4)]
        ws = [isoefficiency(MODELS["gk-improved"], p, NCUBE2_LIKE, 0.5) for p in ps]
        assert fit_growth_exponent(ps, ws, log_power=1.5) == pytest.approx(1.0, abs=0.1)


class TestSection6:
    def test_130_million_cutoff(self):
        """'Even if ts = 0, the tw term of the GK algorithm becomes smaller
        than that of Cannon's algorithm for p > 130 million.'"""
        assert gk_cannon_tw_cutoff() == pytest.approx(1.3e8, rel=0.05)

    def test_fig1_gk_best_above_concurrency_line(self):
        """Figure 1: 'the GK algorithm is the best choice even for
        n^{3/2} <= p <= n^2' (ts=150)."""
        # a point with n^{3/2} < p < n^2
        assert best_algorithm(256, 2**13, NCUBE2_LIKE) == "gk"

    def test_fig1_berntsen_below(self):
        """Figure 1: 'For p < n^{3/2}, Berntsen's algorithm is always better
        than Cannon's algorithm ... the best choice in that region.'"""
        for n, p in ((256, 512), (1024, 2**14), (4096, 2**17)):
            assert p < n**1.5
            assert best_algorithm(n, p, NCUBE2_LIKE) == "berntsen"

    def test_fig2_all_four_present(self):
        """Figure 2: 'each of the four algorithms performs better than the
        rest in some region and all the four regions ... contain practical
        values of p and n.'"""
        rm = region_map(FUTURE_MIMD, log2_p_max=30, log2_n_max=16, p_step=2, n_step=2)
        assert {"gk", "berntsen", "cannon", "dns"} <= rm.winners()

    def test_fig3_assignments(self):
        """Figure 3 (ts=0.5): 'best to use the DNS algorithm for
        n^2 <= p <= n^3, Cannon's algorithm for n^{3/2} <= p <= n^2 and
        Berntsen's algorithm for p < n^{3/2}.'"""
        assert best_algorithm(64, 2**14, SIMD_CM2_LIKE) == "dns"
        assert best_algorithm(256, 2**13, SIMD_CM2_LIKE) == "cannon"
        assert best_algorithm(256, 2**10, SIMD_CM2_LIKE) == "berntsen"

    def test_dns_never_practical_on_fig1_machine(self):
        """Figure 1 discussion: DNS 'will always perform worse than the GK
        algorithm for this set of values of ts and tw' (at practical sizes;
        our exact scan opens its first sliver only beyond p ~ 1e6)."""
        assert dns_beats_gk_max_procs(NCUBE2_LIKE) > 1e5


class TestSection9:
    def test_cm5_constants(self):
        """'One floating point multiplication and addition ... 1.53 us ...
        startup time ... about 380 us ... per-word transfer ... 1.8 us.'"""
        assert CM5.ts * 1.53 == pytest.approx(380.0)
        assert CM5.tw * 1.53 == pytest.approx(1.8)

    def test_crossover_p64(self):
        """'For 64 processors, Cannon's algorithm should perform better than
        our algorithm for n > 83.'"""
        n = equal_overhead_n("gk-cm5", "cannon", 64.0, CM5)
        assert n == pytest.approx(83, abs=2)

    def test_crossover_p512(self):
        """'For 512 processors, the predicted cross-over point is for
        n = 295.'"""
        n = equal_overhead_n("gk-cm5", "cannon", 512.0, CM5)
        assert n == pytest.approx(295, abs=8)

    def test_gk_wide_margin_at_small_n(self):
        """'The GK algorithm achieves an efficiency of 0.5 for a matrix size
        of 112x112, whereas Cannon's algorithm operates at an efficiency of
        only 0.28 on 484 processors on 110x110 matrices' - the margin (~1.8x)
        is the reproducible shape."""
        from repro.algorithms.cannon import run_cannon
        from repro.algorithms.gk import run_gk_cm5
        from repro.simulator.topology import FullyConnected

        A, B = rand_pair(112, seed=5)
        e_gk = run_gk_cm5(A, B, 512).efficiency
        A2, B2 = rand_pair(110, seed=5)
        e_cn = run_cannon(A2, B2, 484, CM5, topology=FullyConnected(484)).efficiency
        assert e_gk > 1.5 * e_cn


class TestSection8:
    def test_31_6(self):
        """'If the number of processors is increased 10 times, one would
        have to solve a problem 31.6 times bigger.'"""
        g = work_growth_for_more_processors("cannon", NCUBE2_LIKE, 1024, 10)
        assert g == pytest.approx(31.6, rel=0.01)

    def test_1000x(self):
        """'If p is kept the same and 10 times faster processors are used,
        then one would need to solve a 1000 times larger problem.'"""
        g = work_growth_for_faster_processors(
            "cannon", SIMD_CM2_LIKE.with_(ts=0.0), 1024, 10
        )
        assert g == pytest.approx(1000.0, rel=1e-6)


class TestSection10:
    def test_no_algorithm_dominates(self):
        """'None of the algorithms discussed in this paper is clearly
        superior to the others.'"""
        winners = set()
        for machine in (NCUBE2_LIKE, FUTURE_MIMD, SIMD_CM2_LIKE):
            rm = region_map(machine, log2_p_max=30, log2_n_max=16, p_step=2, n_step=2)
            winners |= rm.winners() - {"x"}
        assert winners == {"gk", "berntsen", "cannon", "dns"}

    def test_library_covers_every_region(self):
        """'All the algorithms can be stored in a library and the best
        algorithm can be pulled out by a smart preprocessor.'"""
        from repro.core.selector import select

        picks = {
            select(n, p, m).key
            for m in (NCUBE2_LIKE, FUTURE_MIMD, SIMD_CM2_LIKE)
            for (n, p) in ((64, 2**14), (256, 2**13), (256, 2**10), (32, 512))
        }
        assert len(picks) >= 3  # genuinely different choices across regimes
