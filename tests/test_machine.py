"""Unit tests for repro.core.machine."""

import pytest

from repro.core.machine import (
    CM5,
    FUTURE_MIMD,
    IDEAL,
    NCUBE2_LIKE,
    PRESETS,
    SIMD_CM2_LIKE,
    MachineParams,
)


class TestValidation:
    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            MachineParams(ts=-1.0, tw=1.0)
        with pytest.raises(ValueError):
            MachineParams(ts=1.0, tw=-1.0)

    def test_bad_routing_rejected(self):
        with pytest.raises(ValueError):
            MachineParams(ts=1.0, tw=1.0, routing="wormhole")

    def test_bad_unit_time(self):
        with pytest.raises(ValueError):
            MachineParams(ts=1.0, tw=1.0, unit_time=0.0)


class TestTransferTime:
    def test_cut_through_default(self):
        m = MachineParams(ts=10.0, tw=2.0)
        assert m.transfer_time(5) == 10 + 2 * 5

    def test_cut_through_hops_free_when_th_zero(self):
        m = MachineParams(ts=10.0, tw=2.0)
        assert m.transfer_time(5, hops=7) == m.transfer_time(5, hops=1)

    def test_cut_through_with_per_hop(self):
        m = MachineParams(ts=10.0, tw=2.0, th=1.0)
        assert m.transfer_time(5, hops=3) == 10 + 10 + 3

    def test_store_and_forward_scales_with_hops(self):
        m = MachineParams(ts=10.0, tw=2.0, routing="sf")
        assert m.transfer_time(5, hops=3) == 10 + 2 * 5 * 3

    def test_zero_hops_clamped_to_one(self):
        m = MachineParams(ts=10.0, tw=2.0, th=1.0)
        assert m.transfer_time(5, hops=0) == 10 + 10 + 1

    def test_negative_words_rejected(self):
        with pytest.raises(ValueError):
            MachineParams(ts=1.0, tw=1.0).transfer_time(-1)

    def test_sender_busy_time(self):
        m = MachineParams(ts=10.0, tw=2.0)
        assert m.sender_busy_time(4) == 18


class TestPresets:
    def test_paper_figures_params(self):
        assert (NCUBE2_LIKE.ts, NCUBE2_LIKE.tw) == (150.0, 3.0)
        assert (FUTURE_MIMD.ts, FUTURE_MIMD.tw) == (10.0, 3.0)
        assert (SIMD_CM2_LIKE.ts, SIMD_CM2_LIKE.tw) == (0.5, 3.0)

    def test_cm5_normalization(self):
        # Section 9: 1.53 us per basic op, 380 us startup, 1.8 us/word
        assert CM5.ts == pytest.approx(380 / 1.53)
        assert CM5.tw == pytest.approx(1.8 / 1.53)
        assert CM5.unit_time == pytest.approx(1.53e-6)

    def test_ideal_is_free(self):
        assert IDEAL.transfer_time(1000, hops=10) == 0.0

    def test_presets_registry(self):
        assert set(PRESETS) == {"ncube2-like", "future-mimd", "simd-cm2-like", "cm5", "ideal"}


class TestHelpers:
    def test_with_(self):
        m = NCUBE2_LIKE.with_(ts=1.0)
        assert m.ts == 1.0 and m.tw == NCUBE2_LIKE.tw
        assert NCUBE2_LIKE.ts == 150.0  # original untouched

    def test_to_seconds(self):
        assert CM5.to_seconds(2.0) == pytest.approx(3.06e-6)

    def test_ts_over_tw(self):
        assert MachineParams(ts=30.0, tw=3.0).ts_over_tw == 10.0
        assert MachineParams(ts=1.0, tw=0.0).ts_over_tw == float("inf")
        assert MachineParams(ts=0.0, tw=0.0).ts_over_tw == 0.0
