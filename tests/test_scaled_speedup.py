"""Tests for the memory-constrained scaling analysis."""

import math

import pytest

from repro.core.machine import MachineParams
from repro.core.memory import MEMORY_MODELS
from repro.core.scaled_speedup import memory_constrained_n, scaled_speedup_curve

M = MachineParams(ts=5.0, tw=1.0)


class TestMemoryConstrainedN:
    def test_cannon_closed_form(self):
        # 3 n^2 / p == M  =>  n = sqrt(M p / 3)
        n = memory_constrained_n("cannon", 64.0, 1200.0)
        assert n == pytest.approx(math.sqrt(1200 * 64 / 3))

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            memory_constrained_n("cannon", 16.0, 0.0)

    def test_fills_budget(self):
        for key in ("cannon", "simple", "gk", "berntsen"):
            n = memory_constrained_n(key, 64.0, 10_000.0)
            used = MEMORY_MODELS[key].words_per_processor(n, 64.0)
            assert used == pytest.approx(10_000.0, rel=1e-6) or n > 0

    def test_memory_efficient_fits_bigger_problems(self):
        # at the same per-PE budget, Cannon solves a larger n than GK or simple
        p, budget = 4096.0, 30_000.0
        n_cannon = memory_constrained_n("cannon", p, budget)
        assert n_cannon > memory_constrained_n("gk", p, budget)
        assert n_cannon > memory_constrained_n("simple", p, budget)


class TestScaledCurves:
    def test_cannon_efficiency_approaches_constant(self):
        # memory-constrained Cannon scaling IS its isoefficiency scaling:
        # efficiency converges instead of decaying
        pts = scaled_speedup_curve("cannon", M, 50_000.0, [2**k for k in range(4, 21, 4)])
        effs = [pt.efficiency for pt in pts]
        diffs = [abs(b - a) for a, b in zip(effs, effs[1:])]
        assert diffs == sorted(diffs, reverse=True)  # converging
        assert effs[-1] == pytest.approx(effs[-2], abs=0.01)

    def test_gk_efficiency_decays_slowly(self):
        # GK's O(p (log p)^3) isoefficiency outpaces its O(p) memory-bound
        # problem growth, so efficiency drifts down under this scaling
        pts = scaled_speedup_curve("gk", M, 50_000.0, [2**k for k in range(6, 25, 6)])
        effs = [pt.efficiency for pt in pts]
        assert effs == sorted(effs, reverse=True)
        assert effs[-1] < effs[0]

    def test_scaled_speedup_grows(self):
        pts = scaled_speedup_curve("cannon", M, 50_000.0, [16, 256, 4096])
        sp = [pt.scaled_speedup for pt in pts]
        assert sp == sorted(sp)
        assert sp[-1] > 100

    def test_points_feasible(self):
        pts = scaled_speedup_curve("cannon", M, 50_000.0, [16, 256])
        assert all(pt.memory_feasible for pt in pts)
        assert all(pt.work == pytest.approx(pt.n**3) for pt in pts)
