"""The bench-compare regression gate (``make bench-compare``)."""

from __future__ import annotations

import json
import os
import subprocess
import sys

_SCRIPT = os.path.join(os.path.dirname(__file__), "..", "benchmarks", "bench_compare.py")


def _report(fast=False, **speedups):
    rep = {"meta": {"fast": fast, "git_sha": "abc"}}
    for path, value in speedups.items():
        node = rep
        parts = path.split("__")
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    return rep


def _run(tmp_path, base, new, *flags):
    bp = tmp_path / "base.json"
    np_ = tmp_path / "new.json"
    bp.write_text(json.dumps(base))
    np_.write_text(json.dumps(new))
    return subprocess.run(
        [sys.executable, _SCRIPT, str(bp), str(np_), *flags],
        capture_output=True, text=True,
    )


def test_no_regression_passes(tmp_path):
    base = _report(engine__speedup=2.0, sweep__pipeline_speedup=4.0)
    new = _report(engine__speedup=1.95, sweep__pipeline_speedup=4.5)
    proc = _run(tmp_path, base, new)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK" in proc.stdout


def test_regression_beyond_10pct_fails(tmp_path):
    base = _report(engine__speedup=2.0)
    new = _report(engine__speedup=1.7)  # -15%
    proc = _run(tmp_path, base, new)
    assert proc.returncode == 1
    assert "REGRESSION" in proc.stdout


def test_within_tolerance_passes(tmp_path):
    base = _report(engine__speedup=2.0)
    new = _report(engine__speedup=1.85)  # -7.5%
    proc = _run(tmp_path, base, new)
    assert proc.returncode == 0


def test_new_and_retired_sections_are_skipped(tmp_path):
    base = _report(old_section__speedup=10.0, engine__speedup=2.0)
    new = _report(new_section__speedup=0.1, engine__speedup=2.0)
    proc = _run(tmp_path, base, new)
    assert proc.returncode == 0
    assert "only in base" in proc.stdout
    assert "only in new" in proc.stdout


def test_fast_mismatch_warns_instead_of_failing(tmp_path):
    base = _report(fast=False, engine__speedup=2.0)
    new = _report(fast=True, engine__speedup=1.0)
    proc = _run(tmp_path, base, new)
    assert proc.returncode == 0
    assert "WARNING" in proc.stdout
    strict = _run(tmp_path, base, new, "--strict")
    assert strict.returncode == 1


def test_non_speedup_leaves_ignored(tmp_path):
    base = _report(engine__speedup=2.0)
    base["engine"]["rescan_s"] = 100.0
    new = _report(engine__speedup=2.0)
    new["engine"]["rescan_s"] = 1.0
    proc = _run(tmp_path, base, new)
    assert proc.returncode == 0
    assert "rescan_s" not in proc.stdout


def test_compare_function_importable():
    sys.path.insert(0, os.path.dirname(_SCRIPT))
    try:
        from bench_compare import compare

        diff = compare(
            {"a": {"speedup": 2.0}}, {"a": {"speedup": 1.0}}, tolerance=0.1
        )
        assert len(diff["regressions"]) == 1
    finally:
        sys.path.pop(0)
