"""ServeTier (bounded serving LRU + warm preloading) and JobQueue."""

import asyncio

import pytest

from repro.core import crossover, regions
from repro.core.cache import configure_disk_cache, result_cache
from repro.core.machine import PRESETS
from repro.core.prediction import simulated_prediction
from repro.serve.cache import (
    DEFAULT_CURVE_P,
    DEFAULT_CURVE_PAIRS,
    DEFAULT_PRELOAD_MACHINES,
    DEFAULT_REGION_SPEC,
    ServeTier,
)
from repro.serve.jobs import JobQueue

NCUBE = PRESETS["ncube2-like"]


class TestServeTier:
    def test_region_lru_hit(self):
        tier = ServeTier(max_entries=8)
        a = tier.region(NCUBE, log2_p_max=10, log2_n_max=8)
        b = tier.region(NCUBE, log2_p_max=10, log2_n_max=8)
        assert a is b  # second call came from the serving LRU
        stats = tier.stats()
        assert stats["lru"]["hits"] == 1
        assert stats["lru"]["maxsize"] == 8

    def test_distinct_specs_are_distinct_entries(self):
        tier = ServeTier(max_entries=8)
        a = tier.region(NCUBE, log2_p_max=10, log2_n_max=8)
        b = tier.region(NCUBE, log2_p_max=12, log2_n_max=8)
        assert a is not b
        assert len(a.cells[0]) != len(b.cells[0])  # different p extents

    def test_bounded_eviction(self):
        tier = ServeTier(max_entries=2)
        for k in (8, 9, 10):
            tier.region(NCUBE, log2_p_max=k, log2_n_max=6)
        stats = tier.stats()["lru"]
        assert stats["size"] == 2
        assert stats["evictions"] == 1
        # the evicted (oldest) entry recomputes; the newest still hits
        tier.region(NCUBE, log2_p_max=10, log2_n_max=6)
        assert tier.stats()["lru"]["hits"] == 1

    def test_curve_cached(self):
        tier = ServeTier()
        p_values = (16.0, 256.0, 4096.0)
        a = tier.curve("cannon", "gk", NCUBE, p_values)
        b = tier.curve("cannon", "gk", NCUBE, p_values)
        assert a is b
        assert len(a) == 3

    def test_preload_warm_from_disk_is_free(self):
        # populate the disk tier the way a previous server run would,
        # then drop the memory tier: the restart-shaped state
        for name in DEFAULT_PRELOAD_MACHINES:
            machine = PRESETS[name]
            regions.region_map(machine, **DEFAULT_REGION_SPEC)
            for a, b in DEFAULT_CURVE_PAIRS:
                crossover.crossover_curve(a, b, machine, DEFAULT_CURVE_P)
        result_cache().clear()
        before = regions.region_compute_count() + crossover.crossover_compute_count()
        tier = ServeTier()
        summary = tier.preload()
        after = regions.region_compute_count() + crossover.crossover_compute_count()
        assert summary["computed_fresh"] == 0
        assert after == before  # not one model evaluation
        assert summary["entries"] == len(DEFAULT_PRELOAD_MACHINES) * (
            1 + len(DEFAULT_CURVE_PAIRS)
        )
        assert summary["disk_tier"] == "enabled"
        # the preloaded artifacts now serve straight from the LRU
        tier.region(PRESETS[DEFAULT_PRELOAD_MACHINES[0]], **DEFAULT_REGION_SPEC)
        assert tier.stats()["lru"]["hits"] == 1

    def test_preload_cold_computes_once_and_still_warms(self, monkeypatch):
        # REPRO_NO_DISK_CACHE: nothing persisted — preload pays the
        # compute now, but the server still starts warm
        configure_disk_cache(None, enabled=False)
        tier = ServeTier()
        summary = tier.preload(machines=("cm5",), curves=False)
        assert summary["disk_tier"] == "disabled"
        assert summary["computed_fresh"] == 1
        before = regions.region_compute_count()
        tier.region(PRESETS["cm5"], **DEFAULT_REGION_SPEC)
        assert regions.region_compute_count() == before  # served from LRU
        assert tier.stats()["lru"]["hits"] == 1


class TestJobQueue:
    def test_lifecycle_and_cached_resubmit(self):
        async def go():
            queue = JobQueue(workers=1)
            await queue.start()
            try:
                params = {"algorithm": "cannon", "n": 8, "p": 4, "seed": 0}

                def run():
                    return simulated_prediction("cannon", 8, 4, NCUBE, seed=0)

                job = queue.submit("simulate", params, run)
                assert job.status == "queued"
                for _ in range(500):
                    if job.status in ("done", "error"):
                        break
                    await asyncio.sleep(0.01)
                assert job.status == "done", job.error
                assert job.result["verified"] is True
                # same params resolve instantly from the result cache
                again = queue.submit("simulate", params, run)
                assert again.status == "done"
                assert again.cached is True
                assert again.result == job.result
                assert queue.stats()["cache_hits"] == 1
            finally:
                await queue.stop()

        asyncio.run(go())

    def test_failed_job_records_error(self):
        async def go():
            queue = JobQueue(workers=1)
            await queue.start()
            try:
                def boom():
                    raise RuntimeError("engine exploded")

                job = queue.submit("simulate", {"x": 1}, boom)
                for _ in range(500):
                    if job.status in ("done", "error"):
                        break
                    await asyncio.sleep(0.01)
                assert job.status == "error"
                assert "engine exploded" in job.error
                assert queue.stats()["failed"] == 1
                # a failure is not cached: resubmission queues again
                again = queue.submit("simulate", {"x": 1}, boom)
                assert again.cached is False
            finally:
                await queue.stop()

        asyncio.run(go())

    def test_queue_full_raises(self):
        async def go():
            queue = JobQueue(workers=1, max_pending=2)
            # workers never started: submissions pile up in the queue
            for i in range(2):
                queue.submit("simulate", {"i": i}, lambda: None)
            with pytest.raises(asyncio.QueueFull):
                queue.submit("simulate", {"i": 99}, lambda: None)

        asyncio.run(go())

    def test_history_bound_forgets_finished_first(self):
        async def go():
            queue = JobQueue(workers=1, max_pending=64, history=3)
            await queue.start()
            try:
                jobs = [
                    queue.submit("simulate", {"i": i}, lambda i=i: i) for i in range(6)
                ]
                for job in jobs:
                    for _ in range(500):
                        if job.status == "done":
                            break
                        await asyncio.sleep(0.01)
                # trimming happens at submit time and spares live jobs;
                # now that everything finished, the next submit prunes
                last = queue.submit("simulate", {"i": 99}, lambda: 99)
                assert queue.stats()["tracked"] <= 3
                # the newest job is always still pollable
                assert queue.get(last.id) is not None
            finally:
                await queue.stop()

        asyncio.run(go())

    def test_deterministic_ids(self):
        async def go():
            queue = JobQueue(workers=1)
            a = queue.submit("simulate", {"i": 1}, lambda: 1)
            b = queue.submit("simulate", {"i": 2}, lambda: 2)
            assert (a.id, b.id) == ("job-000001", "job-000002")

        asyncio.run(go())

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            JobQueue(workers=0)
