"""Flow-sensitive determinism rules: DET010 (nondet flow), DET011
(call-graph propagated taint), DET012 (unordered float accumulation).

Every fixture comes in a tainted and a sanitized flavor: the rules must
fire on actual source-to-sink flows and stay silent the moment the value
is ordered, seeded, or never reaches a sink.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze_source

SIM = "src/repro/simulator/probe.py"


def ids(src: str, path: str = SIM, **kw) -> list[str]:
    return sorted({f.rule_id for f in analyze_source(textwrap.dedent(src), path, **kw)})


# -- DET010: direct source-to-sink flows --------------------------------------------


def test_wall_clock_into_simulator_state_fires():
    assert "DET010" in ids(
        """
        import time
        class Engine:
            def tick(self):
                self.now = time.time()
        """,
        select=["DET010"],
    )


def test_wall_clock_outside_simulator_state_is_clean():
    # same assignment, but not simulator state (module not under simulator/)
    assert ids(
        """
        import time
        class Reporter:
            def tick(self):
                self.now = time.time()
        """,
        path="src/repro/reports/probe.py",
        select=["DET010"],
    ) == []


def test_set_iteration_order_into_request_field_fires():
    assert "DET010" in ids(
        """
        def prog(info):
            peers = {1, 2, 3}
            for r in peers:
                yield Send(dst=r, data=None, nwords=1, tag=0)
        """,
        select=["DET010"],
    )


def test_sorted_sanitizes_set_iteration():
    assert ids(
        """
        def prog(info):
            peers = {1, 2, 3}
            for r in sorted(peers):
                yield Send(dst=r, data=None, nwords=1, tag=0)
        """,
        select=["DET010"],
    ) == []


def test_set_membership_test_never_fires():
    # iterating for a membership check is fine; no sink involved
    assert ids(
        """
        def prog(info, peers):
            ok = 3 in {1, 2, 3}
            yield Send(dst=1, data=ok, nwords=1, tag=0)
        """,
        select=["DET010"],
    ) == []


def test_unseeded_rng_into_trace_event_fires():
    assert "DET010" in ids(
        """
        import random
        def emit(trace):
            trace.append(TraceEvent(kind="x", rank=0, t0=random.random(), t1=0.0))
        """,
        select=["DET010"],
    )


def test_id_into_cache_key_fires():
    assert "DET010" in ids(
        """
        def shard(obj):
            return key_for(id(obj))
        """,
        select=["DET010"],
    )


def test_listdir_order_into_cache_key_fires_and_sorted_is_clean():
    tainted = """
        import os
        def shard(d):
            names = os.listdir(d)
            return key_for(names)
        """
    clean = """
        import os
        def shard(d):
            names = sorted(os.listdir(d))
            return key_for(names)
        """
    assert "DET010" in ids(tainted, select=["DET010"])
    assert ids(clean, select=["DET010"]) == []


def test_suppression_comment_waives_det010():
    src = """
        import time
        class Engine:
            def tick(self):
                self.now = time.time()  # repro: ignore[DET010] -- fixture
        """
    assert ids(src, select=["DET010"]) == []


# -- DET011: interprocedural propagation --------------------------------------------


def test_tainted_callee_return_reaching_sink_fires_at_call_site():
    findings = analyze_source(
        textwrap.dedent(
            """
            import time
            def fresh_tag():
                return time.monotonic()
            def prog(info):
                yield Send(dst=1, data=None, nwords=1, tag=fresh_tag())
            """
        ),
        SIM,
        select=["DET011"],
    )
    assert [f.rule_id for f in findings] == ["DET011"]
    assert "fresh_tag" in findings[0].message
    assert findings[0].severity == "warn"


def test_clean_callee_does_not_propagate():
    assert ids(
        """
        def fresh_tag():
            return 7
        def prog(info):
            yield Send(dst=1, data=None, nwords=1, tag=fresh_tag())
        """,
        select=["DET011"],
    ) == []


def test_tainted_callee_without_sink_is_silent():
    assert ids(
        """
        import time
        def fresh_tag():
            return time.monotonic()
        def report():
            return {"t": fresh_tag()}
        """,
        select=["DET011"],
    ) == []


# -- DET012: unordered float accumulation -------------------------------------------


def test_sum_over_set_fires():
    assert "DET012" in ids(
        """
        def total():
            xs = {1.0, 2.5, 3.25}
            return sum(xs)
        """,
        select=["DET012"],
    )


def test_augmented_accumulation_over_set_loop_fires():
    assert "DET012" in ids(
        """
        def total():
            xs = {1.0, 2.5, 3.25}
            acc = 0.0
            for x in xs:
                acc += x
            return acc
        """,
        select=["DET012"],
    )


@pytest.mark.parametrize(
    "body",
    [
        "return sum(sorted(xs))",
        "return sum([1.0, 2.5])",
        "return len(xs)",
    ],
)
def test_ordered_or_countless_accumulation_is_clean(body):
    assert ids(
        f"""
        def total():
            xs = {{1.0, 2.5, 3.25}}
            {body}
        """,
        select=["DET012"],
    ) == []


# -- the real tree ------------------------------------------------------------------


def test_dataflow_rules_clean_on_real_simulator():
    from pathlib import Path

    from repro.analysis import analyze_paths

    src = Path(__file__).resolve().parent.parent / "src" / "repro" / "simulator"
    report = analyze_paths([src], select=["DET010", "DET011", "DET012"])
    assert report.findings == [], "\n".join(f.format() for f in report.findings)
