"""Oracle battery: each invariant fires on planted violations and stays
quiet on clean rows."""

from __future__ import annotations

import pytest

from repro.campaign.oracles import ORACLES, OracleConfig, check_scenario
from repro.campaign.schema import Scenario
from repro.core.machine import PRESETS
from repro.simulator.faults import FaultPlan

M = PRESETS["cm5"]


def scenario(**overrides) -> Scenario:
    kwargs = dict(machine=M, algorithms=("cannon",), n_values=(16,), p_values=(4, 16))
    kwargs.update(overrides)
    return Scenario(**kwargs)


def row(**overrides) -> dict:
    base = {
        "algorithm": "cannon", "n": 16, "p": 4, "scheduler": "ready",
        "outcome": "ok", "error": None,
        "T_sim": 1000.0, "T_model": 990.0,
        "efficiency_sim": 0.8, "efficiency_model": 0.81, "overhead_sim": 100.0,
        "messages": 200, "words": 4000, "retransmits": 0,
        "faults_injected": 0, "checkpoint_time": 0.0, "recovery_time": 0.0,
    }
    base.update(overrides)
    return base


class TestConfig:
    def test_defaults_valid(self):
        cfg = OracleConfig()
        assert cfg.divergence

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"model_rel_tol": 0.0}, "model_rel_tol"),
            ({"model_rel_tol": -1.0}, "model_rel_tol"),
            ({"monotone_tol": -1e-9}, "monotone_tol"),
            ({"storm_factor": 0.5}, "storm_factor"),
        ],
    )
    def test_bad_tolerances_rejected(self, kwargs, fragment):
        with pytest.raises(ValueError, match=fragment):
            OracleConfig(**kwargs)


class TestOracles:
    def test_clean_rows_no_anomalies(self):
        out = check_scenario(scenario(), [row(), row(p=16, efficiency_sim=0.7)],
                             None, OracleConfig())
        assert out == []

    def test_fault_signature(self):
        bad = row(outcome="deadlock", error="DeadlockError: stuck")
        out = check_scenario(scenario(), [bad], None, OracleConfig())
        assert [a["oracle"] for a in out] == ["fault-signature"]
        assert out[0]["severity"] == "error"
        assert out[0]["signature"] == "deadlock"
        assert out[0]["p"] == 4

    def test_numerical_mismatch(self):
        bad = row(outcome="numerical-mismatch", error="max abs deviation 1e+00")
        out = check_scenario(scenario(), [bad], None, OracleConfig())
        assert [a["oracle"] for a in out] == ["numerical-mismatch"]

    def test_model_disagreement_fires_on_tight_tolerance(self):
        rows = [row()]
        assert check_scenario(scenario(), rows, None, OracleConfig()) == []
        out = check_scenario(scenario(), rows, None, OracleConfig(model_rel_tol=1e-12))
        assert [a["oracle"] for a in out] == ["model-disagreement"]
        assert out[0]["severity"] == "warn"
        assert out[0]["relative_error"] == pytest.approx(10.0 / 990.0)

    def test_model_disagreement_skipped_under_faults(self):
        s = scenario(fault_plan=FaultPlan(drop_rate=0.1, timeout=500.0))
        out = check_scenario(s, [row(T_sim=5000.0, retransmits=10)], None,
                             OracleConfig(model_rel_tol=1e-12))
        assert out == []

    def test_retransmits_without_drops_is_an_error(self):
        out = check_scenario(scenario(), [row(retransmits=3)], None, OracleConfig())
        assert [a["oracle"] for a in out] == ["retransmit-storm"]
        assert out[0]["severity"] == "error"

    def test_retransmit_storm_beyond_limit(self):
        s = scenario(fault_plan=FaultPlan(drop_rate=0.1, timeout=500.0))
        expected = 200 * 0.1 / 0.9
        calm = row(retransmits=int(expected) + 1)
        out = check_scenario(s, [calm], None, OracleConfig())
        assert out == []
        stormy = row(retransmits=int(8.0 * expected + 16.0) + 10)
        out = check_scenario(s, [stormy], None, OracleConfig())
        assert [a["oracle"] for a in out] == ["retransmit-storm"]
        assert out[0]["severity"] == "warn"

    def test_non_monotone_efficiency(self):
        rows = [row(p=4, efficiency_sim=0.7), row(p=16, efficiency_sim=0.75)]
        out = check_scenario(scenario(), rows, None, OracleConfig())
        assert [a["oracle"] for a in out] == ["non-monotone-efficiency"]
        assert out[0]["p_prev"] == 4
        assert out[0]["p"] == 16
        # separate (algorithm, n) curves are not compared against each other
        rows = [row(n=16, efficiency_sim=0.5), row(n=32, p=16, efficiency_sim=0.9)]
        assert check_scenario(scenario(n_values=(16, 32)), rows, None,
                              OracleConfig()) == []

    def test_non_monotone_skipped_under_faults(self):
        s = scenario(fault_plan=FaultPlan(straggler_rate=0.5, straggler_factor=4.0))
        rows = [row(p=4, efficiency_sim=0.3), row(p=16, efficiency_sim=0.6)]
        assert check_scenario(s, rows, None, OracleConfig()) == []

    def test_scheduler_divergence(self):
        rows = [row()]
        same = [row(scheduler="heap")]
        assert check_scenario(scenario(), rows, same, OracleConfig()) == []
        diverged = [row(scheduler="heap", T_sim=1001.0)]
        out = check_scenario(scenario(), rows, diverged, OracleConfig())
        assert [a["oracle"] for a in out] == ["scheduler-divergence"]
        assert "T_sim" in out[0]["message"]
        assert out[0]["alt_scheduler"] == "heap"

    def test_scheduler_divergence_on_grid_mismatch(self):
        out = check_scenario(scenario(), [row()], [], OracleConfig())
        assert [a["oracle"] for a in out] == ["scheduler-divergence"]

    def test_every_reported_oracle_is_in_the_catalogue(self):
        assert set(ORACLES) == {
            "fault-signature", "numerical-mismatch", "scheduler-divergence",
            "model-disagreement", "non-monotone-efficiency", "retransmit-storm",
        }
