"""Unit and property tests for repro.simulator.topology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulator.topology import (
    FullyConnected,
    Hypercube,
    Mesh2D,
    gray_code,
    gray_rank,
    inverse_gray_code,
)


class TestGrayCode:
    def test_first_codes(self):
        assert [gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray_code(-1)
        with pytest.raises(ValueError):
            inverse_gray_code(-1)

    @given(st.integers(min_value=0, max_value=2**20))
    def test_inverse_roundtrip(self, i):
        assert inverse_gray_code(gray_code(i)) == i

    @given(st.integers(min_value=0, max_value=2**20))
    def test_adjacent_codes_differ_one_bit(self, i):
        assert (gray_code(i) ^ gray_code(i + 1)).bit_count() == 1

    def test_wraparound_one_bit(self):
        # gray(0) and gray(2^k - 1) differ in exactly one bit (ring closure)
        for k in range(1, 10):
            assert (gray_code(0) ^ gray_code(2**k - 1)).bit_count() == 1

    def test_gray_rank_torus_neighbors(self):
        dims = (4, 8)
        hc = Hypercube(5)
        for r in range(4):
            for c in range(8):
                me = gray_rank((r, c), dims)
                right = gray_rank((r, (c + 1) % 8), dims)
                down = gray_rank(((r + 1) % 4, c), dims)
                assert hc.distance(me, right) == 1
                assert hc.distance(me, down) == 1

    def test_gray_rank_validation(self):
        with pytest.raises(ValueError):
            gray_rank((0,), (3,))  # not a power of two
        with pytest.raises(ValueError):
            gray_rank((4,), (4,))  # coordinate out of range
        with pytest.raises(ValueError):
            gray_rank((0, 0), (4,))  # length mismatch


class TestHypercube:
    def test_size(self):
        assert Hypercube(0).size == 1
        assert Hypercube(5).size == 32

    def test_of_size(self):
        assert Hypercube.of_size(64).dim == 6
        with pytest.raises(ValueError):
            Hypercube.of_size(48)

    def test_distance_is_hamming(self):
        h = Hypercube(4)
        assert h.distance(0b0000, 0b1011) == 3
        assert h.distance(5, 5) == 0

    def test_neighbors(self):
        h = Hypercube(3)
        assert sorted(h.neighbors(0)) == [1, 2, 4]
        assert all(h.distance(5, x) == 1 for x in h.neighbors(5))

    def test_degree(self):
        assert Hypercube(6).degree == 6

    def test_node_range_checked(self):
        with pytest.raises(ValueError):
            Hypercube(2).distance(0, 4)

    @given(st.integers(min_value=1, max_value=8), st.data())
    def test_distance_symmetric_triangle(self, dim, data):
        h = Hypercube(dim)
        a = data.draw(st.integers(min_value=0, max_value=h.size - 1))
        b = data.draw(st.integers(min_value=0, max_value=h.size - 1))
        c = data.draw(st.integers(min_value=0, max_value=h.size - 1))
        assert h.distance(a, b) == h.distance(b, a)
        assert h.distance(a, c) <= h.distance(a, b) + h.distance(b, c)


class TestMesh2D:
    def test_coords_rank_roundtrip(self):
        m = Mesh2D(3, 5)
        for a in range(m.size):
            r, c = m.coords(a)
            assert m.rank(r, c) == a

    def test_rank_wraps(self):
        m = Mesh2D(3, 5)
        assert m.rank(-1, 0) == m.rank(2, 0)
        assert m.rank(0, 5) == m.rank(0, 0)

    def test_distance_wraparound(self):
        m = Mesh2D(4, 4, wraparound=True)
        assert m.distance(m.rank(0, 0), m.rank(0, 3)) == 1
        assert m.distance(m.rank(0, 0), m.rank(3, 3)) == 2

    def test_distance_no_wraparound(self):
        m = Mesh2D(4, 4, wraparound=False)
        assert m.distance(m.rank(0, 0), m.rank(0, 3)) == 3
        assert m.distance(m.rank(0, 0), m.rank(3, 3)) == 6

    def test_neighbors_wrap(self):
        m = Mesh2D(3, 3)
        assert len(m.neighbors(m.rank(1, 1))) == 4
        assert m.rank(0, 2) in m.neighbors(m.rank(0, 0))

    def test_neighbors_no_wrap_corner(self):
        m = Mesh2D(3, 3, wraparound=False)
        assert sorted(m.neighbors(0)) == [m.rank(0, 1), m.rank(1, 0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 3)


class TestFullyConnected:
    def test_distance(self):
        f = FullyConnected(8)
        assert f.distance(0, 0) == 0
        assert f.distance(0, 7) == 1

    def test_neighbors(self):
        f = FullyConnected(4)
        assert sorted(f.neighbors(2)) == [0, 1, 3]
        assert f.degree == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            FullyConnected(0)
