"""Tests for Fox's algorithm (Section 4.3)."""

import numpy as np
import pytest

from conftest import rand_pair
from repro.algorithms.cannon import run_cannon
from repro.algorithms.fox import BROADCAST_SCHEMES, run_fox
from repro.core.machine import MachineParams

MACHINE = MachineParams(ts=10.0, tw=2.0)


class TestCorrectness:
    @pytest.mark.parametrize("scheme", BROADCAST_SCHEMES)
    @pytest.mark.parametrize("n,p", [(4, 4), (16, 16), (16, 64)])
    def test_product_exact(self, scheme, n, p):
        A, B = rand_pair(n, seed=n + p)
        res = run_fox(A, B, p, MACHINE, broadcast=scheme)
        assert np.allclose(res.C, A @ B)

    @pytest.mark.parametrize("scheme", BROADCAST_SCHEMES)
    def test_uneven_blocks(self, scheme):
        A, B = rand_pair(19, seed=3)
        res = run_fox(A, B, 16, MACHINE, broadcast=scheme)
        assert np.allclose(res.C, A @ B)

    def test_single_processor(self):
        A, B = rand_pair(5, seed=1)
        res = run_fox(A, B, 1, MACHINE)
        assert np.allclose(res.C, A @ B)


class TestValidation:
    def test_bad_scheme(self):
        A, B = rand_pair(8, seed=0)
        with pytest.raises(ValueError):
            run_fox(A, B, 4, MACHINE, broadcast="telepathy")

    def test_nonsquare_p(self):
        A, B = rand_pair(8, seed=0)
        with pytest.raises(ValueError):
            run_fox(A, B, 8, MACHINE)


class TestTiming:
    def test_binomial_beats_sequential(self):
        # hypercube broadcast is log(sqrt p) steps vs sqrt(p)-1 sequential sends
        A, B = rand_pair(32, seed=5)
        t_seq = run_fox(A, B, 64, MACHINE, broadcast="sequential").parallel_time
        t_bin = run_fox(A, B, 64, MACHINE, broadcast="binomial").parallel_time
        assert t_bin < t_seq

    def test_ring_pipelines_vs_sequential(self):
        # the ring (pipelined) broadcast overlaps iterations; with a large
        # startup cost it beats the root-sends-everything scheme
        machine = MachineParams(ts=200.0, tw=1.0)
        A, B = rand_pair(32, seed=5)
        t_seq = run_fox(A, B, 64, machine, broadcast="sequential").parallel_time
        t_ring = run_fox(A, B, 64, machine, broadcast="ring").parallel_time
        assert t_ring < t_seq

    def test_worse_than_cannon(self):
        # Section 4.3: "clearly the parallel execution time of this algorithm
        # is worse than ... Cannon's algorithm" (synchronous formulations)
        A, B = rand_pair(32, seed=5)
        for scheme in BROADCAST_SCHEMES:
            t_fox = run_fox(A, B, 64, MACHINE, broadcast=scheme).parallel_time
            t_cannon = run_cannon(A, B, 64, MACHINE).parallel_time
            assert t_fox >= t_cannon

    def test_compute_time_is_work(self):
        n, p = 16, 16
        A, B = rand_pair(n, seed=5)
        res = run_fox(A, B, p, MACHINE)
        assert res.sim.total_compute_time == pytest.approx(n**3)
