"""Tests for the adaptive refinement layer (`repro.core.refine`).

The load-bearing property is the exactness contract: every *evaluated*
point of a refined grid is bit-identical to the dense
``winner_grid``, and on the paper's Figure 1-3 machine regimes the
*whole* refined grid (filled cells included) reproduces the dense one.
"""

import numpy as np
import pytest

from repro.core.machine import FUTURE_MIMD, NCUBE2_LIKE, SIMD_CM2_LIKE, MachineParams
from repro.core.models import COMPARISON_MODELS
from repro.core.crossover import equal_overhead_n
from repro.core.refine import (
    DEFAULT_TOL,
    RefinedGrid,
    refine_crossover_curve,
    refine_winner_grid,
    winner_at_points,
)
from repro.core.regions import region_map, winner_grid

FIGURE_MACHINES = (NCUBE2_LIKE, FUTURE_MIMD, SIMD_CM2_LIKE)

#: The exact lattice `region_map` uses for Figures 1-3.
PAPER_N = tuple(float(2**k) for k in range(0, 17))
PAPER_P = tuple(float(2**k) for k in range(0, 31))


def dense(machine, n_values, p_values):
    return winner_grid(machine, n_values, p_values, COMPARISON_MODELS)


class TestWinnerAtPoints:
    def test_matches_dense_grid_on_meshgrid(self):
        n = np.asarray(PAPER_N)[:, None]
        p = np.asarray(PAPER_P)[None, :]
        for machine in FIGURE_MACHINES:
            w, gap = winner_at_points(machine, n, p)
            np.testing.assert_array_equal(w, dense(machine, PAPER_N, PAPER_P))
            assert gap.shape == w.shape
            assert (gap >= 0).all()

    def test_infeasible_sentinel_and_infinite_gap(self):
        # p > n^3: nothing applies -> sentinel winner, infinite gap
        w, gap = winner_at_points(NCUBE2_LIKE, [2.0], [1024.0])
        assert w[0] == len(COMPARISON_MODELS)
        assert np.isinf(gap[0])


class TestBitIdentity:
    """The fuzz gate of the acceptance criteria."""

    @pytest.mark.parametrize("machine", FIGURE_MACHINES, ids=lambda m: m.name)
    def test_full_grid_identity_on_paper_lattice(self, machine):
        ref = refine_winner_grid(machine, PAPER_N, PAPER_P)
        np.testing.assert_array_equal(ref.winners, dense(machine, PAPER_N, PAPER_P))

    @pytest.mark.parametrize("machine", FIGURE_MACHINES, ids=lambda m: m.name)
    def test_full_grid_identity_on_fine_grid(self, machine):
        n_values = np.geomspace(1.0, 2.0**16, 97)
        p_values = np.geomspace(1.0, 2.0**30, 161)
        ref = refine_winner_grid(machine, n_values, p_values)
        d = dense(machine, n_values, p_values)
        np.testing.assert_array_equal(ref.winners, d)
        # the point of refinement: most of the grid was never evaluated
        assert ref.evaluated_fraction < 0.6

    @pytest.mark.parametrize("seed", range(12))
    def test_fuzz_random_machines_evaluated_cells_identical(self, seed):
        rng = np.random.default_rng(seed)
        machine = MachineParams(
            ts=float(10.0 ** rng.uniform(-2, 3)),
            tw=float(10.0 ** rng.uniform(-1, 2)),
            name=f"fuzz{seed}",
        )
        n_values = np.geomspace(1.0, 2.0 ** rng.integers(8, 17), rng.integers(20, 70))
        p_values = np.geomspace(1.0, 2.0 ** rng.integers(10, 31), rng.integers(20, 70))
        ref = refine_winner_grid(machine, n_values, p_values)
        d = dense(machine, n_values, p_values)
        np.testing.assert_array_equal(
            ref.winners[ref.evaluated], d[ref.evaluated]
        )
        # filled cells must at least carry a winner some corner computed
        assert (ref.winners >= 0).all()
        assert (ref.winners <= len(COMPARISON_MODELS)).all()

    def test_max_depth_zero_is_fully_dense(self):
        ref = refine_winner_grid(NCUBE2_LIKE, PAPER_N[:9], PAPER_P[:9], max_depth=0)
        assert ref.evaluated.all()
        np.testing.assert_array_equal(
            ref.winners, dense(NCUBE2_LIKE, PAPER_N[:9], PAPER_P[:9])
        )


class TestTolerance:
    def test_zero_tol_refines_only_on_disagreement(self):
        loose = refine_winner_grid(FUTURE_MIMD, PAPER_N, PAPER_P, tol=0.0)
        strict = refine_winner_grid(FUTURE_MIMD, PAPER_N, PAPER_P, tol=DEFAULT_TOL)
        assert loose.points_evaluated <= strict.points_evaluated
        # evaluated cells stay exact regardless of tol
        d = dense(FUTURE_MIMD, PAPER_N, PAPER_P)
        np.testing.assert_array_equal(loose.winners[loose.evaluated], d[loose.evaluated])

    def test_negative_tol_rejected(self):
        with pytest.raises(ValueError):
            refine_winner_grid(NCUBE2_LIKE, PAPER_N, PAPER_P, tol=-0.1)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            refine_winner_grid(NCUBE2_LIKE, [], PAPER_P)

    def test_result_metadata(self):
        ref = refine_winner_grid(NCUBE2_LIKE, PAPER_N, PAPER_P, max_depth=3, tol=0.5)
        assert isinstance(ref, RefinedGrid)
        assert ref.max_depth == 3 and ref.tol == 0.5
        assert ref.points_evaluated + ref.points_filled == ref.evaluated.size
        assert 0 < ref.evaluated_fraction <= 1.0


class TestRegionMapIntegration:
    @pytest.mark.parametrize("machine", FIGURE_MACHINES, ids=lambda m: m.name)
    def test_refined_region_map_matches_dense(self, machine):
        d = region_map(machine, cache=False)
        r = region_map(machine, refine=True, cache=False)
        assert r.cells == d.cells

    def test_refined_and_dense_cached_separately(self):
        d = region_map(NCUBE2_LIKE, log2_p_max=10, log2_n_max=6)
        r = region_map(NCUBE2_LIKE, log2_p_max=10, log2_n_max=6, refine=True)
        assert r is not d  # distinct cache slots
        assert r.cells == d.cells

    def test_figures123_refine_flag(self):
        from repro.experiments import figures123

        a = figures123.run("fig2", p_step=2, n_step=2)
        b = figures123.run("fig2", p_step=2, n_step=2, refine=True)
        assert b.map.cells == a.map.cells


class TestRefineCrossoverCurve:
    def test_points_match_direct_evaluation(self):
        pts = refine_crossover_curve("gk", "cannon", NCUBE2_LIKE, max_depth=3)
        assert pts == sorted(pts)
        for p, n in pts[:: max(len(pts) // 8, 1)]:
            assert n == equal_overhead_n("gk", "cannon", p, NCUBE2_LIKE)

    def test_densifies_near_onset(self):
        # dns-vs-gk has an onset: the curve appears somewhere inside the
        # range, so adaptive sampling must add points beyond the initial 9
        pts = refine_crossover_curve("dns", "gk", SIMD_CM2_LIKE, initial_points=9)
        assert len(pts) > 9

    def test_validation(self):
        with pytest.raises(ValueError):
            refine_crossover_curve("gk", "cannon", NCUBE2_LIKE, p_lo=8.0, p_hi=4.0)
        with pytest.raises(ValueError):
            refine_crossover_curve("gk", "cannon", NCUBE2_LIKE, initial_points=1)
