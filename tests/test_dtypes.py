"""Operand-dtype robustness across all algorithms.

A production library must not silently corrupt non-float64 inputs; every
algorithm is exercised with float32, float64, and complex128 operands.
"""

import numpy as np
import pytest

from repro.algorithms import registry
from repro.core.machine import MachineParams

M = MachineParams(ts=5.0, tw=1.0)

CASES = [("simple", 16), ("cannon", 16), ("fox", 16), ("berntsen", 8), ("gk", 8), ("dns", 128)]


def _operands(n: int, dtype, seed: int = 0):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n)).astype(dtype)
    B = rng.standard_normal((n, n)).astype(dtype)
    if np.issubdtype(dtype, np.complexfloating):
        A = A + 1j * rng.standard_normal((n, n))
        B = B + 1j * rng.standard_normal((n, n))
    return A, B


class TestDtypes:
    @pytest.mark.parametrize("key,p", CASES)
    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.complex128])
    def test_product_correct_and_dtype_preserved(self, key, p, dtype):
        n = 8
        A, B = _operands(n, dtype, seed=p)
        res = registry.run(key, A, B, p, M)
        rtol = 1e-4 if dtype == np.float32 else 1e-9
        assert np.allclose(res.C, A @ B, rtol=rtol, atol=1e-5)
        assert np.result_type(res.C.dtype, dtype) == np.result_type(A, B)

    @pytest.mark.parametrize("key,p", [("cannon", 16), ("gk", 8)])
    def test_integer_inputs_exact(self, key, p):
        rng = np.random.default_rng(1)
        A = rng.integers(-5, 6, size=(8, 8)).astype(np.int64)
        B = rng.integers(-5, 6, size=(8, 8)).astype(np.int64)
        res = registry.run(key, A, B, p, M)
        assert np.array_equal(res.C.astype(np.int64), A @ B)
