"""Unit tests for the discrete-event engine semantics."""

import pytest

from repro.core.machine import MachineParams
from repro.simulator.engine import Engine, run_spmd
from repro.simulator.errors import DeadlockError, ProgramError
from repro.simulator.request import Barrier, Compute, Recv, Send, SendAll
from repro.simulator.topology import FullyConnected, Hypercube, Mesh2D


def run2(machine, prog0, prog1, topo=None, **kw):
    """Run a two-rank simulation from two generator factories."""
    topo = topo or FullyConnected(2)
    return Engine(topo, machine, **kw).run([prog0, prog1])


class TestCompute:
    def test_compute_advances_clock(self, machine):
        def prog(info):
            yield Compute(100.0)
            return info.rank

        res = run_spmd(FullyConnected(1), machine, prog)
        assert res.parallel_time == 100.0
        assert res.stats[0].compute_time == 100.0
        assert res.returns == [0]

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1.0)

    def test_parallel_time_is_max(self, machine):
        def make(cost):
            def prog(info):
                yield Compute(cost)

            return prog

        res = Engine(FullyConnected(3), machine).run([make(10), make(70), make(30)])
        assert res.parallel_time == 70.0


class TestSendRecv:
    def test_message_timing_one_hop(self, machine):
        # sender: send 5 words at t=0 -> busy until ts + tw*5 = 20
        # receiver: recv completes at arrival time 20
        def sender(info):
            yield Send(dst=1, data="x", nwords=5)

        def receiver(info):
            msg = yield Recv(src=0)
            return msg

        res = run2(machine, sender, receiver)
        assert res.returns[1] == "x"
        assert res.stats[0].send_time == 20.0
        assert res.stats[1].recv_wait_time == 20.0
        assert res.parallel_time == 20.0

    def test_recv_after_compute_no_wait(self, machine):
        def sender(info):
            yield Send(dst=1, data=1, nwords=5)  # arrives at 20

        def receiver(info):
            yield Compute(100.0)
            yield Recv(src=0)

        res = run2(machine, sender, receiver)
        assert res.stats[1].recv_wait_time == 0.0
        assert res.parallel_time == 100.0

    def test_fifo_order_same_channel(self, machine):
        def sender(info):
            yield Send(dst=1, data="first", nwords=1)
            yield Send(dst=1, data="second", nwords=1)

        def receiver(info):
            a = yield Recv(src=0)
            b = yield Recv(src=0)
            return (a, b)

        res = run2(machine, sender, receiver)
        assert res.returns[1] == ("first", "second")

    def test_tags_demultiplex(self, machine):
        def sender(info):
            yield Send(dst=1, data="t7", nwords=1, tag=7)
            yield Send(dst=1, data="t3", nwords=1, tag=3)

        def receiver(info):
            a = yield Recv(src=0, tag=3)
            b = yield Recv(src=0, tag=7)
            return (a, b)

        res = run2(machine, sender, receiver)
        assert res.returns[1] == ("t3", "t7")

    def test_send_is_nonblocking(self, machine):
        # sender finishes its own clock without waiting for the receiver
        def sender(info):
            yield Send(dst=1, data=0, nwords=1)
            return "done"

        def receiver(info):
            yield Compute(1000.0)
            yield Recv(src=0)

        res = run2(machine, sender, receiver)
        assert res.stats[0].finish_time == machine.ts + machine.tw

    def test_exchange_both_send_first(self, machine):
        # classic pairwise exchange must not deadlock (sends are buffered)
        def prog(info):
            other = 1 - info.rank
            yield Send(dst=other, data=info.rank, nwords=10)
            got = yield Recv(src=other)
            return got

        res = run2(machine, prog, prog)
        assert res.returns == [1, 0]
        # one full transfer time each, overlapped
        assert res.parallel_time == machine.ts + 10 * machine.tw

    def test_send_invalid_rank(self, machine):
        def prog(info):
            yield Send(dst=99, data=0, nwords=1)

        with pytest.raises(ProgramError):
            run_spmd(FullyConnected(2), machine, [prog, lambda i: iter(())])

    def test_words_accounting(self, machine):
        def sender(info):
            yield Send(dst=1, data=0, nwords=7)
            yield Send(dst=1, data=0, nwords=3)

        def receiver(info):
            yield Recv(src=0)
            yield Recv(src=0)

        res = run2(machine, sender, receiver)
        assert res.stats[0].messages_sent == 2
        assert res.stats[0].words_sent == 10
        assert res.total_messages == 2
        assert res.total_words == 10


class TestRouting:
    def test_hop_distance_free_under_ct_th0(self, machine):
        # cut-through with th = 0: arrival time independent of distance
        def sender(info):
            yield Send(dst=3, data=0, nwords=5)

        def receiver(info):
            yield Recv(src=0)

        def idle(info):
            return None
            yield

        topo = Hypercube(2)  # 0 -> 3 is two hops
        res = Engine(topo, machine).run([sender, idle, idle, receiver])
        assert res.parallel_time == machine.ts + 5 * machine.tw

    def test_per_hop_latency_charged(self):
        m = MachineParams(ts=10.0, tw=2.0, th=4.0)

        def sender(info):
            yield Send(dst=3, data=0, nwords=5)

        def receiver(info):
            yield Recv(src=0)

        def idle(info):
            return None
            yield

        res = Engine(Hypercube(2), m).run([sender, idle, idle, receiver])
        assert res.parallel_time == 10 + 10 + 4 * 2  # ts + tw*m + th*hops

    def test_store_and_forward_scales(self):
        m = MachineParams(ts=10.0, tw=2.0, routing="sf")

        def sender(info):
            yield Send(dst=3, data=0, nwords=5)

        def receiver(info):
            yield Recv(src=0)

        def idle(info):
            return None
            yield

        res = Engine(Hypercube(2), m).run([sender, idle, idle, receiver])
        assert res.parallel_time == 10 + 2 * 5 * 2  # ts + tw*m*hops


class TestSendAll:
    def _progs(self):
        def sender(info):
            yield SendAll(
                [Send(dst=1, data="a", nwords=10), Send(dst=2, data="b", nwords=10)]
            )

        def receiver(info):
            got = yield Recv(src=0)
            return got

        return [sender, receiver, receiver]

    def test_one_port_serializes(self, machine):
        res = Engine(FullyConnected(3), machine).run(self._progs())
        assert res.stats[0].send_time == 2 * (machine.ts + 10 * machine.tw)

    def test_all_port_overlaps(self, machine):
        res = Engine(FullyConnected(3), machine.with_(all_port=True)).run(self._progs())
        assert res.stats[0].send_time == machine.ts + 10 * machine.tw
        assert res.returns[1:] == ["a", "b"]

    def test_duplicate_destinations_rejected(self):
        with pytest.raises(ValueError):
            SendAll([Send(dst=1, data=0, nwords=1), Send(dst=1, data=0, nwords=1)])


class TestBarrier:
    def test_barrier_aligns_clocks(self, machine):
        def make(cost):
            def prog(info):
                yield Compute(cost)
                yield Barrier()
                yield Compute(1.0)

            return prog

        res = Engine(FullyConnected(3), machine).run([make(10), make(50), make(30)])
        assert res.parallel_time == 51.0
        assert res.stats[0].barrier_wait_time == 40.0
        assert res.stats[1].barrier_wait_time == 0.0

    def test_two_barriers(self, machine):
        def prog(info):
            yield Compute(float(info.rank))
            yield Barrier()
            yield Compute(float(info.rank))
            yield Barrier()

        res = run_spmd(FullyConnected(4), machine, prog)
        assert res.parallel_time == 6.0  # max(rank)=3 twice


class TestErrors:
    def test_deadlock_detected(self, machine):
        def prog(info):
            yield Recv(src=1 - info.rank)

        with pytest.raises(DeadlockError) as err:
            run2(machine, prog, prog)
        assert 0 in err.value.blocked and 1 in err.value.blocked

    def test_bad_request_rejected(self, machine):
        def prog(info):
            yield "not a request"

        with pytest.raises(ProgramError):
            run_spmd(FullyConnected(1), machine, prog)

    def test_factory_count_mismatch(self, machine):
        with pytest.raises(ValueError):
            Engine(FullyConnected(3), machine).run([lambda i: iter(())])


class TestDeterminism:
    def test_result_independent_of_rank_order(self, machine):
        # the scheduler is confluent: a program whose ranks interleave
        # heavily still produces identical clocks across runs
        def prog(info):
            other = (info.rank + 1) % info.nprocs
            prev = (info.rank - 1) % info.nprocs
            data = info.rank
            for _ in range(5):
                yield Send(dst=other, data=data, nwords=3)
                data = yield Recv(src=prev)
                yield Compute(7.0)
            return data

        r1 = run_spmd(FullyConnected(8), machine, prog)
        r2 = run_spmd(FullyConnected(8), machine, prog)
        assert r1.parallel_time == r2.parallel_time
        assert r1.returns == r2.returns
        assert [s.finish_time for s in r1.stats] == [s.finish_time for s in r2.stats]


class TestTrace:
    def test_trace_disabled_by_default(self, machine):
        def prog(info):
            yield Compute(1.0)

        res = run_spmd(FullyConnected(1), machine, prog)
        assert res.trace.events == []

    def test_trace_records_events(self, machine):
        def sender(info):
            yield Compute(5.0)
            yield Send(dst=1, data=0, nwords=2)

        def receiver(info):
            yield Recv(src=0)

        res = Engine(FullyConnected(2), machine, trace=True).run([sender, receiver])
        kinds = [e.kind for e in res.trace.for_rank(0)]
        assert kinds == ["compute", "send"]
        recv_events = res.trace.by_kind("recv")
        assert len(recv_events) == 1 and recv_events[0].rank == 1

    def test_trace_cap(self, machine):
        def prog(info):
            for _ in range(10):
                yield Compute(1.0)

        res = Engine(FullyConnected(1), machine, trace=True, max_trace_events=4).run([prog])
        assert len(res.trace.events) == 4
        assert res.trace.dropped == 6


class TestMetricsOnResult:
    def test_speedup_efficiency_overhead(self, machine):
        def prog(info):
            yield Compute(25.0)

        res = run_spmd(FullyConnected(4), machine, prog)
        work = 100.0
        assert res.speedup(work) == 4.0
        assert res.efficiency(work) == 1.0
        assert res.total_overhead(work) == 0.0
