"""Scenario schema: validation, content addressing, JSON round trip."""

from __future__ import annotations

import json

import pytest

from repro.campaign.schema import SCHEMA_VERSION, Scenario, scenario_from_dict, scenarios_from_json
from repro.core.machine import PRESETS, MachineParams
from repro.simulator.faults import FaultPlan

M = PRESETS["cm5"]


def scenario(**overrides) -> Scenario:
    kwargs = dict(machine=M, algorithms=("cannon",), n_values=(16,), p_values=(4, 16))
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestValidation:
    def test_valid_scenario_constructs(self):
        s = scenario()
        assert s.topology == "hypercube"
        assert s.fault_plan.is_null

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            ({"machine": "cm5"}, "must be a MachineParams"),
            ({"fault_plan": {}}, "must be a FaultPlan"),
            ({"algorithms": ()}, "at least one algorithm"),
            ({"algorithms": ("nope",)}, "unknown key 'nope'"),
            ({"algorithms": ("fox", "cannon")}, "sorted and duplicate-free"),
            ({"algorithms": ("cannon", "cannon")}, "sorted and duplicate-free"),
            ({"n_values": ()}, "non-empty sequence"),
            ({"n_values": (16, 8)}, "strictly increasing"),
            ({"n_values": (16, 16)}, "strictly increasing"),
            ({"p_values": (0,)}, "ints >= 1"),
            ({"p_values": (True, 4)}, "ints >= 1"),
            ({"topology": "torus"}, "unknown topology"),
            ({"scheduler": "fifo"}, "unknown scheduler"),
            ({"scheduler": "compiled"}, "timing only"),
            ({"seed": -1}, "must be an int >= 0"),
            ({"seed": 1.5}, "must be an int >= 0"),
            ({"name": 7}, "must be a string"),
            ({"p_values": (3, 5)}, "no feasible"),
            ({"algorithms": ("gk",), "p_values": (4, 16)}, "no feasible"),
        ],
    )
    def test_bad_scenarios_fail_with_actionable_messages(self, overrides, fragment):
        with pytest.raises(ValueError, match=fragment):
            scenario(**overrides)

    def test_crash_rank_must_be_below_smallest_p(self):
        plan = FaultPlan(horizon=1000.0, crash_times=((5, 100.0),),
                        checkpoint_interval=50.0)
        with pytest.raises(ValueError, match="crash for rank 5"):
            scenario(fault_plan=plan)
        # the same plan is fine once every swept p exceeds the rank
        scenario(fault_plan=plan, p_values=(16,))

    def test_compiled_scheduler_allowed_without_verify(self):
        s = scenario(scheduler="compiled", verify=False)
        assert s.scheduler == "compiled"


class TestIdentity:
    def test_id_is_stable_and_sensitive(self):
        a, b = scenario(), scenario()
        assert a.scenario_id == b.scenario_id
        assert a.short_id == a.scenario_id[:12]
        changed = [
            scenario(seed=1),
            scenario(name="x"),
            scenario(verify=False),
            scenario(scheduler="heap"),
            scenario(topology="fully-connected"),
            scenario(n_values=(16, 32)),
            scenario(fault_plan=FaultPlan(drop_rate=0.1, timeout=500.0)),
            scenario(machine=M.with_(ts=M.ts + 1.0)),
        ]
        ids = {s.scenario_id for s in changed}
        assert len(ids) == len(changed)
        assert a.scenario_id not in ids

    def test_points_order_is_canonical_and_feasible_only(self):
        s = scenario(algorithms=("cannon", "gk"), n_values=(8, 16), p_values=(4, 8, 16))
        pts = list(s.points())
        assert pts == sorted(pts, key=lambda t: (s.algorithms.index(t[0]), t[1], t[2]))
        assert ("cannon", 8, 8) not in pts  # 8 is not a perfect square
        assert ("gk", 8, 4) not in pts  # 4 is not a power of 8
        assert ("gk", 8, 8) in pts


class TestRoundTrip:
    def test_dict_round_trip_preserves_identity(self):
        s = scenario(
            fault_plan=FaultPlan(seed=3, drop_rate=0.05, timeout=400.0),
            scheduler="heap",
            name="round-trip",
        )
        doc = json.loads(json.dumps(s.to_dict()))
        back = scenario_from_dict(doc)
        assert back == s
        assert back.scenario_id == s.scenario_id

    def test_crash_times_survive_json_list_form(self):
        s = scenario(
            p_values=(16,),
            fault_plan=FaultPlan(horizon=1000.0, crash_times=((2, 100.0),),
                                 checkpoint_interval=50.0),
        )
        back = scenario_from_dict(json.loads(json.dumps(s.to_dict())))
        assert back.fault_plan.crash_times == ((2, 100.0),)
        assert back.scenario_id == s.scenario_id

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda d: d.update(schema=99), "schema version 99"),
            (lambda d: d.update(bogus=1), "unknown scenario field"),
            (lambda d: d.pop("machine"), "missing required field"),
            (lambda d: d["machine"].update(warp=9), "does not match MachineParams"),
            (lambda d: d.update(fault_plan={"drop_rate": 0.5}), "timeout"),
            (lambda d: d.update(fault_plan={"crash_times": [3]}), "crash_times"),
        ],
    )
    def test_bad_documents_fail_loudly(self, mutate, fragment):
        doc = scenario().to_dict()
        mutate(doc)
        with pytest.raises(ValueError, match=fragment):
            scenario_from_dict(doc)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            scenario_from_dict([1, 2])


class TestBatteryFile:
    def test_list_parses(self):
        text = json.dumps([scenario().to_dict(), scenario(seed=1).to_dict()])
        out = scenarios_from_json(text, source="battery.json")
        assert [s.seed for s in out] == [0, 1]

    def test_errors_carry_index_and_source(self):
        docs = [scenario().to_dict(), scenario().to_dict()]
        docs[1]["algorithms"] = ["nope"]
        with pytest.raises(ValueError, match=r"battery\.json\[1\]"):
            scenarios_from_json(json.dumps(docs), source="battery.json")
        with pytest.raises(ValueError, match="not valid JSON"):
            scenarios_from_json("{", source="battery.json")
        with pytest.raises(ValueError, match="JSON list"):
            scenarios_from_json("{}", source="battery.json")

    def test_schema_version_exported(self):
        assert scenario().to_dict()["schema"] == SCHEMA_VERSION
