"""Tests for the two-tier keyed result cache (memory LRU + disk shards)."""

import dataclasses
import threading

import numpy as np
import pytest

from repro.core.cache import (
    CACHE_VERSION,
    DiskCache,
    ResultCache,
    cache_stats,
    configure_disk_cache,
    disk_cache,
    result_cache,
)
from repro.core.machine import NCUBE2_LIKE, MachineParams


class TestResultCache:
    def test_get_put_roundtrip(self):
        c = ResultCache()
        assert c.get("k") is None
        assert c.get("k", default=0) == 0
        c.put("k", 42)
        assert c.get("k") == 42
        assert "k" in c
        assert len(c) == 1

    def test_lru_eviction_order(self):
        c = ResultCache(maxsize=2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")  # refresh a; b is now least recent
        c.put("c", 3)
        assert "a" in c and "c" in c
        assert "b" not in c

    def test_stats_and_clear(self):
        c = ResultCache()
        c.put("k", 1)
        c.get("k")
        c.get("missing")
        assert c.stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "size": 1,
            "maxsize": None,
        }
        c.clear()
        stats = c.stats()
        assert stats["hits"] == stats["misses"] == stats["size"] == 0

    def test_default_is_unbounded(self):
        c = ResultCache()
        for i in range(5000):
            c.put(i, i)
        assert len(c) == 5000
        assert c.stats()["evictions"] == 0
        # every entry is still present — nothing was silently dropped
        assert c.get(0) == 0 and c.get(4999) == 4999

    def test_bounded_stays_within_limit(self):
        c = ResultCache(maxsize=8)
        for i in range(100):
            c.put(i, i)
        assert len(c) == 8
        assert c.stats()["maxsize"] == 8
        assert c.stats()["evictions"] == 92

    def test_eviction_counter(self):
        c = ResultCache(maxsize=2)
        for i in range(5):
            c.put(i, i)
        assert c.stats()["evictions"] == 3
        assert c.stats()["size"] == 2

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            ResultCache(maxsize=0)

    def test_overwrite_same_key(self):
        c = ResultCache()
        c.put("k", 1)
        c.put("k", 2)
        assert c.get("k") == 2
        assert len(c) == 1

    def test_concurrent_put_get(self):
        c = ResultCache(maxsize=64)

        def worker(base):
            for i in range(200):
                c.put((base, i % 50), i)
                c.get((base, (i + 1) % 50))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(c) <= 64


class TestDiskCacheKeys:
    """Any input that changes the meaning of a result must change its key."""

    def _key(self, cache, machine, **overrides):
        payload = {
            "kind": "region_map",
            "machine": machine,
            "log2_p_max": 30,
            "log2_n_max": 16,
            "model_keys": ["berntsen", "cannon", "gk", "dns"],
        }
        payload.update(overrides)
        return cache.key_for(payload)

    def test_every_machine_field_changes_the_key(self, tmp_path):
        cache = DiskCache(tmp_path)
        base = MachineParams(ts=150.0, tw=3.0, name="m")
        base_key = self._key(cache, base)
        bumps = {"routing": "sf", "all_port": True}  # validated enum-ish fields
        for field in dataclasses.fields(MachineParams):
            value = getattr(base, field.name)
            if field.name in bumps:
                bumped = bumps[field.name]
            elif isinstance(value, float):
                bumped = value + 1.0
            else:
                bumped = str(value) + "x"
            changed = dataclasses.replace(base, **{field.name: bumped})
            assert self._key(cache, changed) != base_key, field.name

    def test_grid_spec_changes_the_key(self, tmp_path):
        cache = DiskCache(tmp_path)
        base = self._key(cache, NCUBE2_LIKE)
        assert self._key(cache, NCUBE2_LIKE, log2_p_max=29) != base
        assert self._key(cache, NCUBE2_LIKE, log2_n_max=15) != base
        assert self._key(cache, NCUBE2_LIKE, model_keys=["cannon", "gk"]) != base

    def test_salt_changes_the_key(self, tmp_path):
        a = DiskCache(tmp_path, salt=CACHE_VERSION)
        b = DiskCache(tmp_path, salt=CACHE_VERSION + "-next")
        assert self._key(a, NCUBE2_LIKE) != self._key(b, NCUBE2_LIKE)

    def test_stale_salt_misses_existing_shard(self, tmp_path):
        old = DiskCache(tmp_path, salt="v1")
        old.put_arrays(old.key_for({"k": 1}), {"a": np.arange(3)})
        new = DiskCache(tmp_path, salt="v2")
        assert new.get_arrays(new.key_for({"k": 1})) is None

    def test_key_is_stable_across_instances(self, tmp_path):
        a = DiskCache(tmp_path / "a")
        b = DiskCache(tmp_path / "b")
        assert self._key(a, NCUBE2_LIKE) == self._key(b, NCUBE2_LIKE)


class TestDiskCacheIO:
    def test_arrays_roundtrip_bit_identical(self, tmp_path):
        cache = DiskCache(tmp_path)
        arrays = {
            "w": np.arange(12, dtype=np.intp).reshape(3, 4),
            "f": np.array([0.1, np.pi, -1e300, np.nan]),
            "b": np.array([True, False]),
        }
        key = cache.key_for({"k": "roundtrip"})
        cache.put_arrays(key, arrays)
        loaded = cache.get_arrays(key)
        assert loaded is not None
        assert set(loaded) == set(arrays)
        for name, arr in arrays.items():
            assert loaded[name].dtype == arr.dtype
            assert loaded[name].tobytes() == arr.tobytes()

    def test_json_roundtrip_and_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = cache.key_for({"k": "json"})
        assert cache.get_json(key) is None
        rows = [{"algorithm": "cannon", "n": 16, "p": 4, "T_sim": 123.5}]
        cache.put_json(key, rows)
        assert cache.get_json(key) == rows
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_corrupt_shard_is_a_miss_and_removed(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = cache.key_for({"k": "corrupt"})
        cache.put_arrays(key, {"a": np.arange(4)})
        path = tmp_path / f"{key}.npz"
        path.write_bytes(b"not a zipfile")
        assert cache.get_arrays(key) is None
        assert not path.exists()

    def test_concurrent_writers_do_not_corrupt(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = cache.key_for({"k": "race"})
        payload = {"a": np.arange(2048, dtype=np.int64)}
        errors = []

        def writer():
            try:
                for _ in range(20):
                    cache.put_arrays(key, payload)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        loaded = cache.get_arrays(key)
        assert loaded is not None
        assert loaded["a"].tobytes() == payload["a"].tobytes()
        leftovers = [p.name for p in tmp_path.iterdir() if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_clear_and_len(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put_arrays(cache.key_for({"k": 1}), {"a": np.arange(2)})
        cache.put_json(cache.key_for({"k": 2}), {"x": 1})
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {"hits": 0, "misses": 0, "writes": 0, "errors": 0}


class TestDiskCacheConfig:
    def test_configure_and_disable(self, tmp_path):
        configure_disk_cache(tmp_path / "shards")
        cache = disk_cache()
        assert cache is not None
        assert cache.root == str(tmp_path / "shards")
        configure_disk_cache(None, enabled=False)
        assert disk_cache() is None

    def test_cache_stats_shape(self, tmp_path):
        configure_disk_cache(tmp_path / "shards")
        stats = cache_stats()
        assert set(stats) == {"memory", "disk"}
        assert stats["disk"]["dir"] == str(tmp_path / "shards")
        configure_disk_cache(None, enabled=False)
        assert cache_stats()["disk"] is None


class TestGlobalCache:
    def test_singleton(self):
        assert result_cache() is result_cache()

    def test_shared_across_modules(self):
        # regions and sweep memoize into the same instance
        from repro.core.regions import region_map
        from repro.core.machine import NCUBE2_LIKE

        result_cache().clear()
        region_map(NCUBE2_LIKE, log2_p_max=8, log2_n_max=5)
        assert any(
            isinstance(k, tuple) and k and k[0] == "region_map"
            for k in list(result_cache()._data)
        )
