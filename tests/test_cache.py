"""Tests for the process-wide keyed result cache."""

import threading

import pytest

from repro.core.cache import ResultCache, result_cache


class TestResultCache:
    def test_get_put_roundtrip(self):
        c = ResultCache()
        assert c.get("k") is None
        assert c.get("k", default=0) == 0
        c.put("k", 42)
        assert c.get("k") == 42
        assert "k" in c
        assert len(c) == 1

    def test_lru_eviction_order(self):
        c = ResultCache(maxsize=2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")  # refresh a; b is now least recent
        c.put("c", 3)
        assert "a" in c and "c" in c
        assert "b" not in c

    def test_stats_and_clear(self):
        c = ResultCache()
        c.put("k", 1)
        c.get("k")
        c.get("missing")
        assert c.stats() == {"hits": 1, "misses": 1, "size": 1}
        c.clear()
        assert c.stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            ResultCache(maxsize=0)

    def test_overwrite_same_key(self):
        c = ResultCache()
        c.put("k", 1)
        c.put("k", 2)
        assert c.get("k") == 2
        assert len(c) == 1

    def test_concurrent_put_get(self):
        c = ResultCache(maxsize=64)

        def worker(base):
            for i in range(200):
                c.put((base, i % 50), i)
                c.get((base, (i + 1) % 50))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(c) <= 64


class TestGlobalCache:
    def test_singleton(self):
        assert result_cache() is result_cache()

    def test_shared_across_modules(self):
        # regions and sweep memoize into the same instance
        from repro.core.regions import region_map
        from repro.core.machine import NCUBE2_LIKE

        result_cache().clear()
        region_map(NCUBE2_LIKE, log2_p_max=8, log2_n_max=5)
        assert any(
            isinstance(k, tuple) and k and k[0] == "region_map"
            for k in list(result_cache()._data)
        )
