"""Every example script runs end-to-end (with small arguments)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, argv: list[str]) -> None:
    old = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old


class TestExamples:
    def test_quickstart(self, capsys):
        # p = 64 is both a perfect square (Cannon) and a perfect cube (GK)
        _run("quickstart.py", ["32", "64"])
        out = capsys.readouterr().out
        assert "verified" in out

    def test_algorithm_selection(self, capsys):
        _run("algorithm_selection.py", [])
        assert "ranking" in capsys.readouterr().out

    def test_scalability_study(self, capsys):
        _run("scalability_study.py", ["0.5"])
        out = capsys.readouterr().out
        assert "cannon" in out and "unreachable" in out

    def test_cm5_reproduction_fast(self, capsys):
        _run("cm5_reproduction.py", ["--fast"])
        assert "crossover" in capsys.readouterr().out

    def test_technology_tradeoff(self, capsys):
        _run("technology_tradeoff.py", ["4"])
        out = capsys.readouterr().out
        assert "many-slow" in out and "31.6" in out

    def test_memory_constrained_scaling(self, capsys):
        _run("memory_constrained_scaling.py", ["65536"])
        assert "cannon" in capsys.readouterr().out

    def test_paper_walkthrough(self, capsys):
        _run("paper_walkthrough.py", [])
        out = capsys.readouterr().out
        assert "[ok ]" in out
        assert "[!! ]" not in out
