"""The compiled (record→replay) scheduler: bit-identity and fallback rules.

The trace compiler's contract has two halves and both are load-bearing:

* when it engages, every observable of the run — ``T_p``, all per-rank
  accounts, message/word totals — must be **bit-identical** to the
  generator schedulers (heap and the rescan reference), because the
  replay path evaluates the exact same IEEE expressions via
  :mod:`repro.simulator.charging`;
* when the program is not provably rank-symmetric (position-dependent
  traffic, unsupported collectives, tracing/faults/contention), it must
  fall back to the heap scheduler **silently and correctly**, recording
  the reason in ``SimResult.compile_fallback``.

Driver-level cases run all six algorithms; program-level cases poke the
fallback taxonomy and fuzz random machine models (sf routing, per-hop
costs, all-port) against the reference.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.simulator.collectives as coll
import repro.simulator.engine as engine_mod
from repro.algorithms import registry
from repro.core.machine import MachineParams, NCUBE2_LIKE
from repro.simulator.compile import SymmetrySpec
from repro.simulator.engine import Engine, RankInfo
from repro.simulator.faults import FaultPlan
from repro.simulator.request import Barrier, Compute, Recv, Send, SendAll
from repro.simulator.topology import FullyConnected, Hypercube, Mesh2D


def _assert_identical(compiled, reference, p):
    """Every observable of two SimResults, field for field, bitwise."""
    assert compiled.parallel_time == reference.parallel_time
    assert compiled.nprocs == reference.nprocs == p
    assert len(compiled.stats) == p
    for s_c, s_r in zip(compiled.stats, reference.stats):
        assert s_c == s_r, f"rank {s_r.rank} stats diverge"
    assert compiled.total_messages == reference.total_messages
    assert compiled.total_words == reference.total_words
    assert compiled.total_compute_time == reference.total_compute_time
    assert compiled.total_comm_time == reference.total_comm_time


# ---------------------------------------------------------------------------
# driver-level equivalence: all six algorithms
# ---------------------------------------------------------------------------

#: (key, n, p) — smallest instances that exercise each driver's traffic
DRIVER_CASES = [
    ("cannon", 16, 16),
    ("simple", 16, 16),
    ("fox", 16, 16),
    ("berntsen", 8, 8),
    ("dns", 4, 16),
    ("gk", 16, 8),
]


def _run_driver(key, n, p, scheduler):
    rng = np.random.default_rng((hash(key) & 0xFFFF, n))
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    return registry.run(key, A, B, p, machine=NCUBE2_LIKE, scheduler=scheduler)


@pytest.mark.parametrize("macro", [False, True], ids=["message-level", "macro"])
@pytest.mark.parametrize("key,n,p", DRIVER_CASES)
def test_compiled_matches_heap_and_rescan_on_drivers(key, n, p, macro, monkeypatch):
    if macro:
        monkeypatch.setattr(coll, "MACRO_GROUP_MIN", 2)
    res_c = _run_driver(key, n, p, "compiled")
    res_h = _run_driver(key, n, p, "heap")
    res_r = _run_driver(key, n, p, "rescan")
    _assert_identical(res_c.sim, res_h.sim, p)
    _assert_identical(res_c.sim, res_r.sim, p)
    if res_c.sim.compiled:
        assert res_c.C is None
        assert res_c.sim.returns == [None] * p
        assert res_c.sim.compile_fallback is None
    else:
        assert res_c.sim.compile_fallback
        rng = np.random.default_rng((hash(key) & 0xFFFF, n))
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        np.testing.assert_allclose(res_c.C, A @ B, atol=1e-8 * n)


@pytest.mark.parametrize("key,n,p", DRIVER_CASES)
def test_compiled_engagement_matches_registry_annotation(key, n, p, monkeypatch):
    """With the macro path available, engagement == the library annotation.

    ``rank_symmetric`` advertises whether the default driver config
    compiles; the group-size cutoff is pinned to 2 so the small test
    grids take the same macro executors the 64k runs do.
    """
    monkeypatch.setattr(coll, "MACRO_GROUP_MIN", 2)
    res = _run_driver(key, n, p, "compiled")
    assert res.sim.compiled == registry.get(key).rank_symmetric, (
        res.sim.compile_fallback
    )


def test_cannon_p1024_compiled_bit_identical(monkeypatch):
    """A mid-scale point on the real 64k path (macro collectives active)."""
    monkeypatch.setattr(coll, "MACRO_GROUP_MIN", 2)
    res_c = _run_driver("cannon", 32, 1024, "compiled")
    res_h = _run_driver("cannon", 32, 1024, "heap")
    assert res_c.sim.compiled
    _assert_identical(res_c.sim, res_h.sim, 1024)


@pytest.mark.parametrize("all_port", [False, True], ids=["one-port", "all-port"])
def test_cannon_overlap_shifts_compiled(all_port, monkeypatch):
    """SendAll replay: the all-port max-fold and one-port serialization."""
    from repro.algorithms.cannon import run_cannon

    machine = MachineParams(ts=30.0, tw=2.0, th=1.0, all_port=all_port, name="m")
    rng = np.random.default_rng(7)
    A = rng.standard_normal((16, 16))
    B = rng.standard_normal((16, 16))
    res_c = run_cannon(A, B, 16, machine=machine, overlap_shifts=True,
                       scheduler="compiled")
    res_h = run_cannon(A, B, 16, machine=machine, overlap_shifts=True,
                       scheduler="heap")
    assert res_c.sim.compiled
    _assert_identical(res_c.sim, res_h.sim, 16)


def test_simple_on_mesh_ring_allgather_compiles():
    """The ring all-gather compiles at message level (no macro needed)."""
    from repro.algorithms.simple import run_simple

    rng = np.random.default_rng(3)
    A = rng.standard_normal((16, 16))
    B = rng.standard_normal((16, 16))
    topo = Mesh2D(4, 4)
    res_c = run_simple(A, B, 16, machine=NCUBE2_LIKE, topology=topo,
                       scheduler="compiled")
    res_h = run_simple(A, B, 16, machine=NCUBE2_LIKE, topology=topo,
                       scheduler="heap")
    assert res_c.sim.compiled, res_c.sim.compile_fallback
    _assert_identical(res_c.sim, res_h.sim, 16)


# ---------------------------------------------------------------------------
# program-level: fallback taxonomy
# ---------------------------------------------------------------------------


def _ring_spec(p):
    return SymmetrySpec(partitions={"ring": np.arange(p, dtype=np.int64)[None, :]})


def _ring_factories(p, nwords=10, tag=5):
    """Symmetric: every rank sends right, receives from the left."""

    def make(rank):
        def body(info: RankInfo):
            yield Compute(3.0)
            yield Send(dst=(rank + 1) % p, data=None, nwords=nwords, tag=tag)
            yield Recv(src=(rank - 1) % p, tag=tag)
            yield Barrier(label="done")
            return None

        return body

    return [make(r) for r in range(p)]


def _relay_factories(p, nwords=10, tag=5):
    """Asymmetric: a bucket-brigade line, every position behaves differently."""

    def make(rank):
        def body(info: RankInfo):
            if rank == 0:
                yield Send(dst=1, data=None, nwords=nwords, tag=tag)
            elif rank < p - 1:
                got = yield Recv(src=rank - 1, tag=tag)
                yield Send(dst=rank + 1, data=got, nwords=nwords, tag=tag)
            else:
                yield Recv(src=rank - 1, tag=tag)
            return rank

        return body

    return [make(r) for r in range(p)]


def test_rank_asymmetric_program_falls_back_bit_identically():
    """Acceptance criterion: the relay line is NOT rank-symmetric; the
    compiler must notice (probe traces diverge) and the heap fallback
    must agree with an explicit heap run on every field."""
    p = 16
    topo = Hypercube(4)
    res_c = Engine(topo, NCUBE2_LIKE, scheduler="compiled",
                   symmetry=_ring_spec(p)).run(_relay_factories(p))
    res_h = Engine(topo, NCUBE2_LIKE, scheduler="heap").run(_relay_factories(p))
    assert not res_c.compiled
    assert res_c.compile_fallback  # reason recorded
    _assert_identical(res_c, res_h, p)
    assert res_c.returns == list(range(p))  # real generators actually ran


def test_symmetric_program_compiles():
    p = 16
    topo = Hypercube(4)
    res_c = Engine(topo, NCUBE2_LIKE, scheduler="compiled",
                   symmetry=_ring_spec(p)).run(_ring_factories(p))
    res_h = Engine(topo, NCUBE2_LIKE, scheduler="heap").run(_ring_factories(p))
    assert res_c.compiled and res_c.compile_fallback is None
    assert res_c.arrays is not None
    assert res_c.returns == [None] * p
    _assert_identical(res_c, res_h, p)


@pytest.mark.parametrize(
    "kwargs,reason",
    [
        (dict(symmetry=None), "no SymmetrySpec"),
        (dict(trace=True), "tracing"),
        (dict(link_contention=True), "contention"),
        (dict(fault_plan=FaultPlan(seed=1)), "fault plan"),
    ],
)
def test_pre_probe_blockers_fall_back(kwargs, reason):
    p = 8
    topo = Hypercube(3)
    kwargs.setdefault("symmetry", _ring_spec(p))
    res = Engine(topo, NCUBE2_LIKE, scheduler="compiled", **kwargs).run(
        _ring_factories(p)
    )
    assert not res.compiled
    assert reason in res.compile_fallback


def test_malformed_symmetry_spec_raises():
    p = 8
    topo = Hypercube(3)
    bad = SymmetrySpec(
        partitions={"ring": np.arange(p - 1, dtype=np.int64)[None, :]}
    )
    with pytest.raises(ValueError):
        Engine(topo, NCUBE2_LIKE, scheduler="compiled", symmetry=bad).run(
            _ring_factories(p)
        )


def test_fallback_reruns_generators_fresh():
    """Recording probes must not consume the real factories' effects:
    after a fallback every rank's return value is intact."""
    p = 8
    res = Engine(Hypercube(3), NCUBE2_LIKE, scheduler="compiled",
                 symmetry=_ring_spec(p)).run(_relay_factories(p))
    assert res.returns == list(range(p))


# ---------------------------------------------------------------------------
# random-machine fuzz: the charging helpers under every cost regime
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_compiled_fuzz_random_machines(seed):
    rng = np.random.default_rng(seed)
    machine = MachineParams(
        ts=float(rng.uniform(1, 200)),
        tw=float(rng.uniform(0.1, 8)),
        th=float(rng.uniform(0, 5)),
        routing=("ct", "sf")[seed % 2],
        all_port=bool(seed % 3 == 0),
        name=f"fuzz{seed}",
    )
    p = 16
    topo = (Hypercube(4), FullyConnected(16), Mesh2D(4, 4))[seed % 3]

    def make(rank):
        def body(info: RankInfo):
            yield Compute(float(5 + seed))
            yield SendAll([
                Send(dst=(rank + 1) % p, data=None, nwords=17, tag=1),
                Send(dst=(rank - 1) % p, data=None, nwords=9, tag=2),
            ])
            yield Recv(src=(rank - 1) % p, tag=1)
            yield Recv(src=(rank + 1) % p, tag=2)
            yield Barrier(label="b")
            yield Send(dst=(rank + 3) % p, data=None, nwords=33, tag=3)
            yield Recv(src=(rank - 3) % p, tag=3)
            return None

        return body

    factories = [make(r) for r in range(p)]
    res_c = Engine(topo, machine, scheduler="compiled",
                   symmetry=_ring_spec(p)).run(factories)
    res_h = Engine(topo, machine, scheduler="heap").run(factories)
    res_r = Engine(topo, machine, scheduler="rescan").run(factories)
    assert res_c.compiled, res_c.compile_fallback
    _assert_identical(res_c, res_h, p)
    _assert_identical(res_c, res_r, p)


# ---------------------------------------------------------------------------
# numba opt-in: bit-identity with the pure-numpy kernel
# ---------------------------------------------------------------------------


def test_numba_kernel_bit_identical_when_available():
    from repro.simulator import charging

    try:
        import numba  # noqa: F401
    except ImportError:
        pytest.skip("numba not installed; pure-numpy fallback is the tested path")
    p = 16
    factories = _ring_factories(p)
    res_np = Engine(Hypercube(4), NCUBE2_LIKE, scheduler="compiled",
                    symmetry=_ring_spec(p)).run(factories)
    assert charging.set_numba(True)
    try:
        res_nb = Engine(Hypercube(4), NCUBE2_LIKE, scheduler="compiled",
                        symmetry=_ring_spec(p)).run(factories)
    finally:
        charging.set_numba(False)
    assert res_nb.compiled
    _assert_identical(res_nb, res_np, p)


def test_numba_gating_off_by_default():
    from repro.simulator import charging

    import os
    if os.environ.get("REPRO_NUMBA") == "1":
        pytest.skip("REPRO_NUMBA=1 set in this environment")
    assert not charging.numba_enabled()


# ---------------------------------------------------------------------------
# satellite: SimResult totals are numpy reductions pinned to per-rank views
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scheduler", ["ready", "rescan", "heap", "compiled"])
def test_totals_match_per_rank_stats(scheduler, monkeypatch):
    monkeypatch.setattr(coll, "MACRO_GROUP_MIN", 2)
    res = _run_driver("cannon", 16, 16, scheduler)
    sim = res.sim
    # int totals: exact equality against the Python sum over the views
    assert sim.total_messages == sum(s.messages_sent for s in sim.stats)
    assert sim.total_words == sum(s.words_sent for s in sim.stats)
    # float totals: the reduction must agree with the per-rank accounts
    assert sim.total_compute_time == pytest.approx(
        sum(s.compute_time for s in sim.stats), rel=1e-12
    )
    assert sim.total_comm_time == pytest.approx(
        sum(s.send_time + s.recv_wait_time + s.barrier_wait_time for s in sim.stats),
        rel=1e-12,
    )
    # every scheduler path now exposes its RankArrays
    assert sim.arrays is not None
    assert sim.arrays.nprocs == 16


def test_totals_fall_back_to_python_sums_without_arrays():
    res = _run_driver("cannon", 16, 16, "heap")
    sim = res.sim
    with_arrays = (sim.total_messages, sim.total_words,
                   sim.total_compute_time, sim.total_comm_time)
    sim.arrays = None
    assert sim.total_messages == with_arrays[0]
    assert sim.total_words == with_arrays[1]
    assert sim.total_compute_time == pytest.approx(with_arrays[2], rel=1e-12)
    assert sim.total_comm_time == pytest.approx(with_arrays[3], rel=1e-12)
