"""Report surfaces: SARIF 2.1.0 output, baseline workflow, --explain, severities."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, load_baseline, to_sarif, write_baseline
from repro.analysis.cli import main
from repro.analysis.core import RULES, _load_rule_modules

REPO = Path(__file__).resolve().parent.parent

TAINTED = textwrap.dedent(
    """
    import time

    class Engine:
        def tick(self):
            self.now = time.time()
    """
)


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


def _plant(tmp_path: Path, text: str = TAINTED) -> Path:
    target = tmp_path / "repro" / "simulator"
    target.mkdir(parents=True)
    probe = target / "probe.py"
    probe.write_text(text)
    return probe


# -- SARIF --------------------------------------------------------------------------


def test_sarif_document_structure(tmp_path):
    _plant(tmp_path)
    report = analyze_paths([tmp_path])
    doc = to_sarif(report)
    assert doc["version"] == "2.1.0"
    assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
    run = doc["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.analysis"
    rule_ids = {r["id"] for r in driver["rules"]}
    assert {"DET010", "DIM001", "CACHE001", "ENG007", "DRIVER001"} <= rule_ids
    # severity mapping: error->error, warn->warning, info->note
    levels = {r["id"]: r["defaultConfiguration"]["level"] for r in driver["rules"]}
    assert levels["DET010"] == "error"
    assert levels["DET011"] == "warning"
    # results carry locations and refer back to the rule catalogue
    assert run["results"], "expected findings from the tainted fixture"
    for result in run["results"]:
        assert result["ruleId"] in rule_ids
        loc = result["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] >= 1
        assert loc["artifactLocation"]["uri"].endswith("probe.py")


def test_sarif_validates_against_schema(tmp_path):
    """Validate against the vendored SARIF 2.1.0 structural subset schema.

    The subset transcribes the official schema's required properties and
    enums for everything the emitter produces (the official schema is a
    strict superset), so validation runs offline in CI and locally.
    """
    jsonschema = pytest.importorskip("jsonschema")
    schema_path = REPO / "tests" / "data" / "sarif-2.1.0-subset.schema.json"
    schema = json.loads(schema_path.read_text())
    _plant(tmp_path)
    doc = to_sarif(analyze_paths([tmp_path]))
    jsonschema.validate(doc, schema)
    # and the real tree's (empty-results) document validates too
    clean = to_sarif(analyze_paths([REPO / "src" / "repro" / "analysis"]))
    jsonschema.validate(clean, schema)


def test_sarif_minimal_wellformedness():
    """Offline structural checks for the SARIF 2.1.0 required properties."""
    doc = to_sarif(analyze_paths([REPO / "src" / "repro" / "analysis"]))
    assert set(doc) >= {"$schema", "version", "runs"}
    run = doc["runs"][0]
    assert "tool" in run and "driver" in run["tool"]
    for rule in run["tool"]["driver"]["rules"]:
        assert set(rule) >= {"id", "name", "shortDescription", "defaultConfiguration"}
        assert rule["shortDescription"]["text"]
    for result in run["results"]:
        assert set(result) >= {"ruleId", "level", "message", "locations"}


def test_cli_sarif_output_and_stdout(tmp_path):
    _plant(tmp_path)
    out = tmp_path / "findings.sarif"
    proc = run_cli("--format", "sarif", "--sarif-output", str(out), str(tmp_path))
    assert proc.returncode == 1  # fixture has error-tier findings
    on_disk = json.loads(out.read_text())
    on_stdout = json.loads(proc.stdout)
    assert on_disk == on_stdout
    assert on_disk["runs"][0]["results"]


def test_sarif_baseline_states(tmp_path):
    probe = _plant(tmp_path)
    baseline = {f.baseline_key for f in analyze_paths([tmp_path]).findings}
    # add a *new* finding beyond the baselined one
    probe.write_text(TAINTED + "\nimport heapq\ndef f(h, e):\n    heapq.heappush(h, e)\n")
    report = analyze_paths([tmp_path], baseline=baseline)
    doc = to_sarif(report, baseline_used=True)
    states = {r["ruleId"]: r["baselineState"] for r in doc["runs"][0]["results"]}
    assert states["ENG007"] == "new"
    assert states["DET010"] == "unchanged"


# -- baseline workflow --------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    _plant(tmp_path)
    report = analyze_paths([tmp_path])
    assert not report.ok
    bl = tmp_path / "baseline.json"
    write_baseline(report, bl)
    keys = load_baseline(bl)
    assert keys == {f.baseline_key for f in report.findings}
    # with the baseline applied, the same tree is accepted
    again = analyze_paths([tmp_path], baseline=keys)
    assert again.ok
    assert again.findings == []
    assert {f.baseline_key for f in again.baselined} == keys


def test_baseline_keys_ignore_line_numbers(tmp_path):
    probe = _plant(tmp_path)
    keys = {f.baseline_key for f in analyze_paths([tmp_path]).findings}
    # prepend unrelated lines: line numbers shift, keys must not
    probe.write_text("# a comment\n# another\n" + TAINTED)
    moved = analyze_paths([tmp_path], baseline=keys)
    assert moved.ok and moved.findings == []


def test_baseline_rejects_malformed_files(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("[]")
    with pytest.raises(ValueError):
        load_baseline(bad)


def test_cli_write_baseline_then_gate(tmp_path):
    _plant(tmp_path)
    bl = tmp_path / "baseline.json"
    assert main(["--baseline", str(bl), "--write-baseline", str(tmp_path)]) == 0
    assert main(["--baseline", str(bl), str(tmp_path)]) == 0
    # without the baseline the same tree still fails
    assert main([str(tmp_path)]) == 1


def test_cli_write_baseline_requires_baseline_path():
    proc = run_cli("--write-baseline", "src/repro")
    assert proc.returncode == 2
    assert "--baseline" in proc.stderr


def test_self_lint_clean_against_committed_baseline():
    """Regression gate: the tree must stay clean under the committed baseline."""
    baseline_file = REPO / "analysis_baseline.json"
    assert baseline_file.exists()
    baseline = load_baseline(baseline_file)
    report = analyze_paths([REPO / "src" / "repro"], baseline=baseline)
    assert report.parse_errors == []
    assert report.findings == [], "\n".join(f.format() for f in report.findings)
    # the committed baseline carries no accepted findings today; if this
    # grows, each entry needs a justification in the PR that adds it
    assert baseline == set()


# -- severities and --explain -------------------------------------------------------


def test_severities_in_json_report(tmp_path):
    _plant(tmp_path)
    payload = json.loads(run_cli("--format", "json", str(tmp_path)).stdout)
    severities = {f["rule"]: f["severity"] for f in payload["findings"]}
    assert severities.get("DET010") == "error"


def test_warn_findings_do_not_gate_exit_status(tmp_path):
    target = tmp_path / "repro" / "experiments"
    target.mkdir(parents=True)
    (target / "probe.py").write_text(
        textwrap.dedent(
            """
            def total():
                xs = {1.0, 2.5}
                return sum(xs)  # DET012, warn tier
            """
        )
    )
    proc = run_cli("--format", "json", str(tmp_path))
    assert proc.returncode == 0
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert {f["rule"] for f in payload["findings"]} == {"DET012"}


def test_every_rule_has_explain_content():
    _load_rule_modules()
    for rule in RULES.values():
        assert (type(rule).__doc__ or "").strip(), f"{rule.rule_id} lacks a rationale"
    # the new families additionally ship fix text and an example
    for rule_id in ("DET010", "DET011", "DET012", "DIM001", "DIM002",
                    "CACHE001", "ENG007", "SWEEP001", "DRIVER001"):
        rule = RULES[rule_id]
        assert rule.fix, f"{rule_id} lacks fix text"
        assert rule.example, f"{rule_id} lacks an example"


@pytest.mark.parametrize("rule_id", ["DET010", "DIM001", "CACHE001"])
def test_cli_explain(rule_id):
    proc = run_cli("--explain", rule_id)
    assert proc.returncode == 0
    assert rule_id in proc.stdout
    assert f"repro: ignore[{rule_id}]" in proc.stdout
    assert "Fix:" in proc.stdout


def test_cli_explain_unknown_rule_is_usage_error():
    proc = run_cli("--explain", "NOPE99")
    assert proc.returncode == 2
