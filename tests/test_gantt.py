"""Tests for the ASCII Gantt renderer."""

import pytest

from conftest import rand_pair
from repro.algorithms.cannon import run_cannon
from repro.core.machine import MachineParams
from repro.simulator.gantt import GLYPHS, gantt_chart
from repro.simulator.trace import Trace, TraceEvent

M = MachineParams(ts=10.0, tw=2.0)


class TestGantt:
    def test_empty_trace(self):
        assert "empty trace" in gantt_chart(Trace())

    def test_basic_rendering(self):
        tr = Trace(enabled=True)
        tr.record(TraceEvent(0, 0.0, 50.0, "compute"))
        tr.record(TraceEvent(0, 50.0, 60.0, "send"))
        tr.record(TraceEvent(1, 0.0, 60.0, "recv"))
        text = gantt_chart(tr, width=60)
        lines = text.splitlines()
        assert lines[1].startswith("rank    0 |")
        assert "#" in lines[1] and ">" in lines[1]
        assert "." in lines[2]

    def test_rank_filter(self):
        tr = Trace(enabled=True)
        tr.record(TraceEvent(0, 0.0, 10.0, "compute"))
        tr.record(TraceEvent(5, 0.0, 10.0, "compute"))
        text = gantt_chart(tr, ranks=[5])
        assert "rank    5" in text and "rank    0" not in text

    def test_glyph_legend_present(self):
        tr = Trace(enabled=True)
        tr.record(TraceEvent(0, 0.0, 10.0, "compute"))
        text = gantt_chart(tr)
        for glyph in GLYPHS.values():
            assert glyph in text

    def test_real_run_has_phase_structure(self):
        A, B = rand_pair(16, seed=1)
        res = run_cannon(A, B, 16, M, trace=True)
        text = gantt_chart(res.sim.trace, width=80)
        lines = text.splitlines()
        assert len(lines) == 17  # header + 16 ranks
        # every rank computes and communicates
        for line in lines[1:]:
            assert "#" in line
            assert ">" in line or "." in line

    def test_width_respected(self):
        tr = Trace(enabled=True)
        tr.record(TraceEvent(0, 0.0, 10.0, "compute"))
        text = gantt_chart(tr, width=33)
        row = text.splitlines()[1].split("|", 1)[1]
        assert len(row) == 33
