"""Tests for the technology-scaling analysis (Section 8)."""

import pytest

from repro.core.machine import NCUBE2_LIKE, SIMD_CM2_LIKE, MachineParams
from repro.core.technology import (
    compare_fleets,
    faster_processors,
    work_growth_for_faster_processors,
    work_growth_for_more_processors,
)


class TestFasterProcessors:
    def test_scaling(self):
        m = MachineParams(ts=10.0, tw=2.0, unit_time=1e-6)
        f = faster_processors(m, 4)
        assert f.ts == 40.0 and f.tw == 8.0
        assert f.unit_time == pytest.approx(2.5e-7)

    def test_wallclock_invariant_for_pure_compute(self):
        # k-fold faster CPUs run the n^3/p part k-fold faster in wall clock
        m = MachineParams(ts=0.0, tw=0.0, unit_time=1.0)
        f = faster_processors(m, 5)
        from repro.core.models import MODELS

        t_slow = MODELS["cannon"].time(64, 16, m) * m.unit_time
        t_fast = MODELS["cannon"].time(64, 16, f) * f.unit_time
        assert t_fast == pytest.approx(t_slow / 5)

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            faster_processors(NCUBE2_LIKE, 0)


class TestWorkGrowth:
    def test_cannon_more_processors_31_6(self):
        g = work_growth_for_more_processors("cannon", NCUBE2_LIKE, 1024, 10)
        assert g == pytest.approx(31.6, rel=0.01)  # paper: 10^1.5 = 31.6

    def test_cannon_faster_cpus_k_cubed(self):
        # small-ts regime: the tw^3 multiplier makes growth ~ k^3 = 1000
        g = work_growth_for_faster_processors("cannon", SIMD_CM2_LIKE, 1024, 10)
        assert 900 < g < 1001

    def test_exact_k_cubed_at_ts_zero(self):
        m = MachineParams(ts=0.0, tw=3.0)
        g = work_growth_for_faster_processors("cannon", m, 1024, 10)
        assert g == pytest.approx(1000.0, rel=1e-6)

    def test_growth_above_one(self):
        for key in ("cannon", "gk", "berntsen"):
            assert work_growth_for_more_processors(key, NCUBE2_LIKE, 512, 8) > 1
            assert work_growth_for_faster_processors(key, NCUBE2_LIKE, 512, 8) > 1


class TestFleets:
    def test_many_slow_wins_large_problems(self):
        # with enough work, k*p slow processors out-compute p fast ones
        cmp_ = compare_fleets("cannon", 4096, 64, 4, NCUBE2_LIKE)
        assert cmp_.many_slow_wins

    def test_few_fast_wins_small_problems(self):
        # tiny problems are overhead-dominated: fewer faster processors win
        cmp_ = compare_fleets("cannon", 64, 64, 4, NCUBE2_LIKE)
        assert not cmp_.many_slow_wins

    def test_ratio(self):
        cmp_ = compare_fleets("cannon", 1024, 64, 4, NCUBE2_LIKE)
        assert cmp_.ratio == pytest.approx(
            cmp_.seconds_few_fast / cmp_.seconds_many_slow
        )

    def test_applicability_checked(self):
        with pytest.raises(ValueError):
            compare_fleets("cannon", 8, 64, 4, NCUBE2_LIKE)  # k*p > n^2
