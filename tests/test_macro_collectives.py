"""Fast-path-vs-reference equivalence for the macro collectives.

The macro fast path (:mod:`repro.simulator.macro`) simulates a whole
collective as one closed-form, vectorized clock/stats update.  Its
contract is *bit-identity* with the message-level reference: same
``T_p``, same per-rank accounts, same message/word totals, and the same
payload objects (including aliasing relationships) delivered to every
rank.  This file pins that contract three ways:

* a deterministic sweep of all seven collectives across machine models
  (store-and-forward vs cut-through, hop costs, all-port) and
  topologies;
* a property-based fuzz over random group shapes, member permutations,
  payload shapes, staggered entry times, and collective sequences;
* payload-aliasing tests for the zero-copy ndarray handoff — where the
  reference shares one object the fast path must share it too, and
  where the reference copies (reduce-scatter) no two ranks may end up
  with memory-sharing views.

``MACRO_GROUP_MIN`` is pinned to 2 throughout so small (fast-to-run)
groups exercise the macro executors that production only uses for
``g >= 64``.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.simulator.collectives as coll
from repro.core.machine import CM5, NCUBE2_LIKE, MachineParams
from repro.simulator.collectives import (
    allgather_recursive_doubling,
    allgather_ring,
    barrier,
    bcast_binomial,
    reduce_binomial,
    reduce_scatter_halving,
    shift_cyclic,
)
from repro.simulator.engine import run_spmd
from repro.simulator.topology import FullyConnected, Hypercube, Mesh2D


@contextmanager
def macro_group_min(value: int):
    """Temporarily lower the macro cutoff so tiny groups take the fast path."""
    prev = coll.MACRO_GROUP_MIN
    coll.MACRO_GROUP_MIN = value
    try:
        yield
    finally:
        coll.MACRO_GROUP_MIN = prev


def deep_eq(a, b) -> bool:
    """Bitwise-exact structural equality (arrays compare dtype + contents)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and a.shape == b.shape
            and np.array_equal(a, b)
        )
    if isinstance(a, (list, tuple)):
        return (
            type(a) is type(b)
            and len(a) == len(b)
            and all(deep_eq(x, y) for x, y in zip(a, b))
        )
    return type(a) is type(b) and a == b


def assert_identical(res_a, res_b, label: str):
    """Every observable SimResult field, bit for bit."""
    assert res_a.parallel_time == res_b.parallel_time, label
    assert res_a.total_messages == res_b.total_messages, label
    assert res_a.total_words == res_b.total_words, label
    assert len(res_a.stats) == len(res_b.stats)
    for s_a, s_b in zip(res_a.stats, res_b.stats):
        assert s_a == s_b, f"{label}: rank {s_a.rank} stats diverge"
    assert len(res_a.returns) == len(res_b.returns)
    for r, (v_a, v_b) in enumerate(zip(res_a.returns, res_b.returns)):
        assert deep_eq(v_a, v_b), f"{label}: rank {r} return value diverges"


def run_three_ways(p, topo, machine, factory):
    """(macro+ready, message+ready, message+rescan) runs of one program."""
    with macro_group_min(2):
        macro = run_spmd(topo, machine, factory, scheduler="ready", macro_collectives=True)
    msg = run_spmd(topo, machine, factory, scheduler="ready", macro_collectives=False)
    rescan = run_spmd(topo, machine, factory, scheduler="rescan", macro_collectives=False)
    return macro, msg, rescan


# -- deterministic sweep: all collectives x machine models x topologies ------------

MACHINES = [
    NCUBE2_LIKE,
    CM5,
    MachineParams(ts=10.0, tw=2.0, th=1.0, routing="ct"),
    MachineParams(ts=10.0, tw=2.0, th=3.0, routing="sf"),
    MachineParams(ts=0.0, tw=1.0, all_port=True),
]

TOPOLOGIES = [
    lambda p: Hypercube.of_size(p),
    lambda p: FullyConnected(p),
]


def _all_collectives_body(info, group):
    """One program touching all seven collectives with distinct payloads."""
    rng = np.random.default_rng((1234, info.rank))
    a = rng.standard_normal(6)
    results = []
    got = yield from bcast_binomial(info, group, 1, a if info.rank == group[1] else None)
    results.append(got)
    got = yield from reduce_binomial(
        info, group, 0, a.copy(), charge_op=lambda x: float(np.asarray(x).size)
    )
    results.append(got)
    got = yield from allgather_recursive_doubling(info, group, a * 2.0)
    results.append(got)
    got = yield from allgather_ring(info, group, a + 1.0)
    results.append(got)
    got = yield from reduce_scatter_halving(info, group, rng.standard_normal((4, 4)))
    results.append(got)
    got = yield from shift_cyclic(info, group, 3, a - 3.0)
    results.append(got)
    yield from barrier(info)
    return results


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name or m.routing)
@pytest.mark.parametrize("make_topo", TOPOLOGIES, ids=["hypercube", "fully-connected"])
def test_all_collectives_bit_identical(machine, make_topo):
    p = 8
    topo = make_topo(p)
    group = list(range(p))

    def factory(info):
        return _all_collectives_body(info, group)

    macro, msg, rescan = run_three_ways(p, topo, machine, factory)
    assert_identical(macro, msg, "macro vs message-ready")
    assert_identical(macro, rescan, "macro vs rescan reference")


def test_subgroup_and_permuted_group_bit_identical():
    """Disjoint concurrent subgroups with permuted member orders."""
    p = 16
    topo = Hypercube.of_size(p)
    groups = [
        [3, 1, 7, 5],
        [0, 4, 2, 6],
        [15, 11, 13, 9],
        [8, 12, 10, 14],
    ]

    def factory(info):
        def body():
            group = next(g for g in groups if info.rank in g)
            data = np.full(4, float(info.rank))
            got1 = yield from bcast_binomial(
                info, group, 2, data if group[2] == info.rank else None
            )
            got2 = yield from allgather_recursive_doubling(info, group, data)
            got3 = yield from reduce_scatter_halving(info, group, data)
            return got1, got2, got3

        return body()

    macro, msg, rescan = run_three_ways(p, topo, NCUBE2_LIKE, factory)
    assert_identical(macro, msg, "subgroups macro vs message-ready")
    assert_identical(macro, rescan, "subgroups macro vs rescan")


def test_mesh_topology_distances_bit_identical():
    p = 16
    topo = Mesh2D(4, 4)
    group = list(range(p))

    def factory(info):
        def body():
            got = yield from allgather_ring(info, group, np.arange(3.0) + info.rank)
            return got

        return body()

    macro, msg, rescan = run_three_ways(p, topo, MachineParams(ts=5.0, tw=1.5, th=2.0), factory)
    assert_identical(macro, msg, "mesh macro vs message-ready")
    assert_identical(macro, rescan, "mesh macro vs rescan")


# -- property-based fuzz -----------------------------------------------------------


def _build_schedule(seed: int, p: int, rounds: int):
    """Random rounds of (kind, group, params) plus per-rank entry stagger."""
    rng = np.random.default_rng(seed)
    kinds = ("bcast", "reduce", "allgather_rd", "allgather_ring", "reduce_scatter", "shift")
    schedule = []
    for r in range(rounds):
        kind = kinds[int(rng.integers(len(kinds)))]
        if kind in ("allgather_rd", "reduce_scatter"):
            gs = int(2 ** rng.integers(1, int(np.log2(p)) + 1))
        else:
            gs = int(rng.integers(2, p + 1))
        members = [int(x) for x in rng.permutation(p)[:gs]]
        shape = (int(rng.integers(1, 5)), int(rng.integers(1, 4)))
        schedule.append(
            {
                "kind": kind,
                "group": members,
                "root_index": int(rng.integers(gs)),
                "offset": int(rng.integers(0, 2 * gs)),
                "shape": shape,
                "nwords": None if rng.integers(2) else int(rng.integers(0, 30)),
                "tag": int(rng.integers(3)),
                "costs": [float(rng.integers(0, 500)) for _ in range(p)],
                "charge": bool(rng.integers(2)),
            }
        )
    return schedule


def _fuzz_factory(schedule, seed: int):
    from repro.simulator.request import Compute

    def factory(info):
        def body():
            results = []
            for i, rnd in enumerate(schedule):
                cost = rnd["costs"][info.rank]
                if cost:
                    yield Compute(cost)
                if info.rank not in rnd["group"]:
                    continue
                rng = np.random.default_rng((seed, i, info.rank))
                data = rng.standard_normal(rnd["shape"])
                kind, group, tag = rnd["kind"], rnd["group"], rnd["tag"]
                if kind == "bcast":
                    root = group[rnd["root_index"]]
                    got = yield from bcast_binomial(
                        info, group, rnd["root_index"],
                        data if info.rank == root else None,
                        nwords=rnd["nwords"], tag=tag,
                    )
                elif kind == "reduce":
                    got = yield from reduce_binomial(
                        info, group, rnd["root_index"], data,
                        nwords=rnd["nwords"], tag=tag,
                        charge_op=(lambda x: float(np.asarray(x).size))
                        if rnd["charge"] else None,
                    )
                elif kind == "allgather_rd":
                    got = yield from allgather_recursive_doubling(
                        info, group, data, nwords=rnd["nwords"], tag=tag
                    )
                elif kind == "allgather_ring":
                    got = yield from allgather_ring(
                        info, group, data, nwords=rnd["nwords"], tag=tag
                    )
                elif kind == "reduce_scatter":
                    got = yield from reduce_scatter_halving(
                        info, group, data, tag=tag, charge_adds=rnd["charge"]
                    )
                else:
                    got = yield from shift_cyclic(
                        info, group, rnd["offset"], data,
                        nwords=rnd["nwords"], tag=tag,
                    )
                results.append(got)
            return results

        return body()

    return factory


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    p=st.sampled_from([4, 8, 16]),
    rounds=st.integers(min_value=1, max_value=4),
    machine=st.sampled_from(MACHINES),
    fully_connected=st.booleans(),
)
def test_fuzz_macro_matches_reference(seed, p, rounds, machine, fully_connected):
    topo = FullyConnected(p) if fully_connected else Hypercube.of_size(p)
    schedule = _build_schedule(seed, p, rounds)
    factory = _fuzz_factory(schedule, seed)
    macro, msg, rescan = run_three_ways(p, topo, machine, factory)
    assert_identical(macro, msg, f"seed={seed} macro vs message-ready")
    assert_identical(macro, rescan, f"seed={seed} macro vs rescan reference")


# -- payload aliasing: the zero-copy contract --------------------------------------


def _run_macro(p, factory, machine=NCUBE2_LIKE):
    with macro_group_min(2):
        return run_spmd(
            Hypercube.of_size(p), machine, factory,
            scheduler="ready", macro_collectives=True,
        )


def _run_reference(p, factory, machine=NCUBE2_LIKE):
    return run_spmd(
        Hypercube.of_size(p), machine, factory,
        scheduler="ready", macro_collectives=False,
    )


class TestPayloadAliasing:
    """Where the reference shares objects the fast path shares them; where
    the reference copies, in-place mutation must stay private to a rank."""

    def test_bcast_delivers_the_root_object_zero_copy(self):
        p = 8
        group = list(range(p))
        payload = np.arange(5.0)

        def factory(info):
            def body():
                got = yield from bcast_binomial(
                    info, group, 0, payload if info.rank == 0 else None
                )
                return got

            return body()

        for runner in (_run_macro, _run_reference):
            res = runner(p, factory)
            for r in range(p):
                assert res.returns[r] is payload

    def test_allgather_returns_original_contribution_objects(self):
        p = 8
        group = list(range(p))
        contributions = [np.full(3, float(r)) for r in range(p)]

        def factory(info):
            def body():
                got = yield from allgather_recursive_doubling(
                    info, group, contributions[info.rank]
                )
                return got

            return body()

        for runner in (_run_macro, _run_reference):
            res = runner(p, factory)
            for r in range(p):
                # fresh list per rank...
                assert res.returns[r] is not res.returns[(r + 1) % p]
                # ...of the exact objects each member contributed
                for j in range(p):
                    assert res.returns[r][j] is contributions[j]

    def test_shift_hands_over_the_sender_object(self):
        p = 8
        group = list(range(p))
        payloads = [np.full(2, float(r)) for r in range(p)]

        def factory(info):
            def body():
                got = yield from shift_cyclic(info, group, 3, payloads[info.rank])
                return got

            return body()

        for runner in (_run_macro, _run_reference):
            res = runner(p, factory)
            for r in range(p):
                assert res.returns[r] is payloads[(r - 3) % p]

    def test_reduce_scatter_slices_share_no_memory(self):
        """Each rank's piece is a private copy: no cross-rank views, and
        no view of any rank's input array."""
        p = 8
        group = list(range(p))
        inputs = [np.full((4, 4), float(r + 1)) for r in range(p)]

        def factory(info):
            def body():
                piece, lo, hi = yield from reduce_scatter_halving(
                    info, group, inputs[info.rank]
                )
                return piece, lo, hi

            return body()

        for runner in (_run_macro, _run_reference):
            res = runner(p, factory)
            pieces = [res.returns[r][0] for r in range(p)]
            for r in range(p):
                for other in pieces[r + 1:]:
                    assert not np.shares_memory(pieces[r], other)
                for inp in inputs:
                    assert not np.shares_memory(pieces[r], inp)

    def test_reduce_scatter_inplace_mutation_stays_private(self):
        """A rank scribbling over its returned piece (and its own input)
        must not corrupt any other rank's result."""
        p = 8
        group = list(range(p))
        expected_total = sum(float(r + 1) for r in range(p))

        def make_inputs():
            return [np.full((4, 4), float(r + 1)) for r in range(p)]

        for runner in (_run_macro, _run_reference):
            inputs = make_inputs()

            def factory(info):
                def body():
                    piece, lo, hi = yield from reduce_scatter_halving(
                        info, group, inputs[info.rank]
                    )
                    # scribble: in-place mutation of everything this rank holds
                    snapshot = piece.copy()
                    piece[:] = -1e9
                    inputs[info.rank][:] = -1e9
                    return snapshot, lo, hi

                return body()

            res = runner(p, factory)
            for r in range(p):
                snapshot, lo, hi = res.returns[r]
                assert np.array_equal(snapshot, np.full(hi - lo, expected_total))

    def test_reduce_scatter_input_copied_at_call_time(self):
        """The working copy is taken when the helper is invoked, so the
        returned piece never aliases the caller's array."""
        p = 4
        group = list(range(p))
        inputs = [np.ones(8) for _ in range(p)]

        def factory(info):
            def body():
                piece, lo, hi = yield from reduce_scatter_halving(
                    info, group, inputs[info.rank]
                )
                return np.shares_memory(piece, inputs[info.rank])

            return body()

        for runner in (_run_macro, _run_reference):
            res = runner(p, factory)
            assert res.returns == [False] * p

    def test_reduce_root_gets_folded_value_others_none(self):
        p = 8
        group = list(range(p))

        def factory(info):
            def body():
                got = yield from reduce_binomial(
                    info, group, 3, np.full(4, float(info.rank))
                )
                return got

            return body()

        for runner in (_run_macro, _run_reference):
            res = runner(p, factory)
            for r in range(p):
                if r == 3:
                    assert np.array_equal(res.returns[r], np.full(4, float(sum(range(p)))))
                else:
                    assert res.returns[r] is None
