"""Tests for the broadcast-scheme study experiment (§5.4.1)."""

import pytest

from repro.core.machine import MachineParams
from repro.experiments import broadcast_study

M = MachineParams(ts=50.0, tw=2.0)


class TestBroadcastStudy:
    def test_rows_structure(self):
        rows = broadcast_study.run(machine=M, p=16, m_values=(16, 1024))
        assert len(rows) == 2
        assert {"T_binomial", "T_scatter_allgather", "T_pipelined_allport"} <= set(rows[0])

    def test_large_messages_favor_improved_schemes(self):
        rows = broadcast_study.run(machine=M, p=16, m_values=(4096,))
        (row,) = rows
        assert row["above_packet_bound"]
        assert row["T_scatter_allgather"] < row["T_binomial"]
        assert row["T_pipelined_allport"] < row["T_binomial"]

    def test_small_messages_favor_binomial(self):
        rows = broadcast_study.run(machine=M, p=16, m_values=(4,))
        (row,) = rows
        assert not row["above_packet_bound"]
        assert row["T_binomial"] <= row["T_scatter_allgather"]

    def test_pipelined_tracks_jho_bound(self):
        rows = broadcast_study.run(machine=M, p=64, m_values=(16384,))
        (row,) = rows
        assert row["T_pipelined_allport"] == pytest.approx(row["jho_bound"], rel=0.10)

    def test_format(self):
        text = broadcast_study.format_text(
            broadcast_study.run(machine=M, p=16, m_values=(64,))
        )
        assert "Broadcast-scheme study" in text

    def test_cli_entry(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["broadcast", "--fast"]) == 0
        assert "T_binomial" in capsys.readouterr().out
