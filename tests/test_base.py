"""Tests for the shared algorithm infrastructure (layouts, routing, result)."""

import numpy as np
import pytest

from conftest import rand_pair
from repro.algorithms.base import (
    MatmulResult,
    check_same_shape,
    cube_layout_3d,
    cube_route,
    default_topology,
    grid_layout,
    matmul_cost,
    serial_work,
)
from repro.core.machine import MachineParams
from repro.simulator.engine import run_spmd
from repro.simulator.topology import FullyConnected, Hypercube, Mesh2D

M = MachineParams(ts=10.0, tw=2.0)


class TestCosts:
    def test_matmul_cost(self):
        assert matmul_cost(2, 3, 4) == 24.0

    def test_serial_work_square(self):
        assert serial_work(8) == 512.0


class TestCheckShape:
    def test_ok(self, rng):
        assert check_same_shape(rng.standard_normal((5, 5)), rng.standard_normal((5, 5))) == 5

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ValueError):
            check_same_shape(rng.standard_normal((5, 4)), rng.standard_normal((4, 5)))

    def test_rejects_mismatch(self, rng):
        with pytest.raises(ValueError):
            check_same_shape(rng.standard_normal((5, 5)), rng.standard_normal((4, 4)))


class TestDefaultTopology:
    def test_hypercube(self):
        t = default_topology(16)
        assert isinstance(t, Hypercube) and t.size == 16

    def test_fully_connected(self):
        t = default_topology(10, "fully-connected")
        assert isinstance(t, FullyConnected) and t.size == 10

    def test_unknown(self):
        with pytest.raises(ValueError):
            default_topology(4, "torus9d")


class TestGridLayout:
    def test_binary_rows_are_subcubes(self):
        topo = Hypercube(4)
        layout = grid_layout(topo, 4, 4, scheme="binary")
        # each row's ranks differ only in the low 2 bits
        for row in layout:
            base = row[0] & ~0b11
            assert all(r & ~0b11 == base for r in row)

    def test_gray_ring_neighbors_one_hop(self):
        topo = Hypercube(4)
        layout = grid_layout(topo, 4, 4, scheme="gray")
        for i in range(4):
            for j in range(4):
                assert topo.distance(layout[i][j], layout[i][(j + 1) % 4]) == 1
                assert topo.distance(layout[i][j], layout[(i + 1) % 4][j]) == 1

    def test_layout_is_permutation(self):
        topo = Hypercube(4)
        for scheme in ("binary", "gray"):
            layout = grid_layout(topo, 4, 4, scheme=scheme)
            ranks = sorted(r for row in layout for r in row)
            assert ranks == list(range(16))

    def test_mesh_uses_own_coords(self):
        mesh = Mesh2D(2, 3)
        layout = grid_layout(mesh, 2, 3)
        assert layout == [[0, 1, 2], [3, 4, 5]]

    def test_mesh_shape_mismatch(self):
        with pytest.raises(ValueError):
            grid_layout(Mesh2D(2, 3), 3, 2)

    def test_grid_must_cover(self):
        with pytest.raises(ValueError):
            grid_layout(Hypercube(4), 2, 4)

    def test_bad_scheme(self):
        with pytest.raises(ValueError):
            grid_layout(Hypercube(4), 4, 4, scheme="hilbert")

    def test_hypercube_rectangular_pow2_sides_ok(self):
        layout = grid_layout(Hypercube(4), 8, 2)
        assert len(layout) == 8 and len(layout[0]) == 2

    def test_fully_connected_row_major(self):
        layout = grid_layout(FullyConnected(6), 2, 3)
        assert layout == [[0, 1, 2], [3, 4, 5]]


class TestCubeLayout:
    def test_axis_groups_are_subcubes(self):
        topo = Hypercube(6)
        layout = cube_layout_3d(topo, 4)
        # fixing any two axes, the ranks along the third differ only in
        # that axis's bit-field (so each axis group is a subcube)
        i_group = [layout[(i, 2, 3)] for i in range(4)]
        assert len({g & 0b001111 for g in i_group}) == 1
        k_group = [layout[(1, 2, k)] for k in range(4)]
        assert len({g & 0b111100 for g in k_group}) == 1

    def test_is_permutation(self):
        layout = cube_layout_3d(Hypercube(6), 4)
        assert sorted(layout.values()) == list(range(64))

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            cube_layout_3d(Hypercube(6), 3)


class TestCubeRoute:
    def test_relays_one_dimension_at_a_time(self):
        # route 0 -> 7 in a 3-cube: 3 messages, each a full (ts + tw*m) step
        def prog(info):
            got = yield from cube_route(info, 0, 7, "payload" if info.rank == 0 else None, nwords=5)
            return got if info.rank == 7 else None

        res = run_spmd(Hypercube(3), M, prog)
        assert res.returns[7] == "payload"
        assert res.parallel_time == pytest.approx(3 * (M.ts + 5 * M.tw))

    def test_same_src_dst(self):
        def prog(info):
            got = yield from cube_route(info, 2, 2, "x" if info.rank == 2 else None, nwords=1)
            return got

        res = run_spmd(Hypercube(2), M, prog)
        assert res.returns[2] == "x"
        assert res.parallel_time == 0.0

    def test_bystanders_unaffected(self):
        def prog(info):
            got = yield from cube_route(info, 0, 1, "x" if info.rank == 0 else None, nwords=1)
            return got if info.rank == 1 else "bystander"

        res = run_spmd(Hypercube(3), M, prog)
        assert res.returns[1] == "x"
        assert res.returns[5] == "bystander"
        assert res.stats[5].finish_time == 0.0


class TestMatmulResult:
    def test_derived_metrics(self):
        from repro.algorithms.cannon import run_cannon

        A, B = rand_pair(16, seed=1)
        res = run_cannon(A, B, 16, M)
        assert isinstance(res, MatmulResult)
        assert res.work == 16**3
        assert res.speedup == pytest.approx(res.work / res.parallel_time)
        assert res.efficiency == pytest.approx(res.speedup / 16)
        assert res.total_overhead == pytest.approx(16 * res.parallel_time - res.work)
        assert res.wallclock_seconds == pytest.approx(res.parallel_time * M.unit_time)
