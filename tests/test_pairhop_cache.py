"""PairHopCache edge cases: clamping, sharing, and hash-seed independence.

The hop tables feed both the heap scheduler's batch charging and the
trace compiler's replay, so three properties are load-bearing: the
``max(hops, 1)`` clamp must match the scalar message path exactly (a
self-message still pays one link), the per-topology cache must be shared
across Engine instances (:meth:`PairHopCache.shared`), and the tables
must not depend on ``PYTHONHASHSEED`` (a hash-ordered table would make
batch charging nondeterministic across processes).
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np

from repro.simulator.engine import Engine
from repro.simulator.request import Compute
from repro.simulator.topology import (
    FullyConnected,
    Hypercube,
    Mesh2D,
    PairHopCache,
    Topology,
)


class _ScalarOnlyLine(Topology):
    """A topology that answers only the scalar metric (no vectorized
    ``distances`` override), so the cache takes its memoizing loop."""

    def __init__(self, size: int) -> None:
        self._size = size

    @property
    def size(self) -> int:
        return self._size

    def distance(self, a: int, b: int) -> int:
        return abs(a - b)

    def neighbors(self, rank: int) -> list[int]:
        return [r for r in (rank - 1, rank + 1) if 0 <= r < self._size]


def test_single_rank_topology():
    """p=1: the only pair is (0, 0) and it still clamps to one hop."""
    for topo in (FullyConnected(1), Hypercube(0), _ScalarOnlyLine(1)):
        cache = PairHopCache(topo)
        assert cache.hop(0, 0) == 1
        out = cache.bulk(np.zeros(3, dtype=np.int64), np.zeros(3, dtype=np.int64))
        assert out.tolist() == [1, 1, 1]


def test_clamp_matches_scalar_path_on_all_topologies():
    """bulk() == max(distance, 1) pairwise, including zero-distance pairs
    and the non-power-of-two mesh (the 3x5 wraparound has asymmetric
    row/col distances that a pow2-only shortcut would get wrong)."""
    topos = [Hypercube(3), FullyConnected(7), Mesh2D(3, 5), _ScalarOnlyLine(9)]
    rng = np.random.default_rng(0)
    for topo in topos:
        cache = PairHopCache(topo)
        src = rng.integers(0, topo.size, size=64)
        dst = rng.integers(0, topo.size, size=64)
        # force some self-pairs so the clamp is exercised
        dst[::7] = src[::7]
        out = cache.bulk(src.astype(np.int64), dst.astype(np.int64))
        expect = [max(topo.distance(int(a), int(b)), 1) for a, b in zip(src, dst)]
        assert out.tolist() == expect
        assert (out >= 1).all()


def test_shared_cache_survives_across_engines():
    """Two engines on one topology instance reuse one cache object, and
    the memoized scalar table carries over (no re-deriving per run)."""
    topo = _ScalarOnlyLine(8)
    c1 = PairHopCache.shared(topo)
    c2 = PairHopCache.shared(topo)
    assert c1 is c2
    c1.hop(2, 5)
    assert (2, 5) in c1._pairs

    def make(rank):
        def body(info):
            yield Compute(1.0)
            return None

        return body

    from repro.core.machine import NCUBE2_LIKE

    for _ in range(2):
        Engine(topo, NCUBE2_LIKE, scheduler="heap").run([make(r) for r in range(8)])
    assert PairHopCache.shared(topo) is c1
    # a different instance gets its own cache
    assert PairHopCache.shared(_ScalarOnlyLine(8)) is not c1


def test_shared_cache_is_weakly_keyed():
    import gc

    topo = _ScalarOnlyLine(4)
    cache = PairHopCache.shared(topo)
    assert PairHopCache._shared.get(topo) is cache
    n_before = len(PairHopCache._shared)
    del topo, cache
    gc.collect()
    assert len(PairHopCache._shared) < n_before + 1


_HASHSEED_SNIPPET = """
import numpy as np
from repro.simulator.topology import Hypercube, Mesh2D, PairHopCache
rng = np.random.default_rng(42)
for topo in (Hypercube(4), Mesh2D(4, 4)):
    cache = PairHopCache(topo)
    src = rng.integers(0, topo.size, size=128).astype(np.int64)
    dst = rng.integers(0, topo.size, size=128).astype(np.int64)
    print(cache.bulk(src, dst).tolist())
"""


def test_hop_tables_independent_of_pythonhashseed():
    """Identical bulk tables under two different hash seeds."""
    outputs = []
    for seed in ("0", "424242"):
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SNIPPET],
            capture_output=True, text=True,
            env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=".",
        )
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
