"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import cache as cache_mod
from repro.core.machine import MachineParams


@pytest.fixture(autouse=True)
def _sandbox_caches(tmp_path, monkeypatch):
    """Isolate both cache tiers per test.

    The disk tier defaults to ``~/.cache/repro``; without this fixture
    tests would read shards left by earlier runs (or by the user) and
    leak their own.  Each test gets a fresh temp directory and an empty
    memory tier, and ``$REPRO_CACHE_DIR`` is pointed there too so
    subprocess-spawning tests stay sandboxed.
    """
    cache_dir = tmp_path / "repro-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    cache_mod.configure_disk_cache(cache_dir)
    cache_mod.result_cache().clear()
    yield
    cache_mod.configure_disk_cache(None)
    cache_mod.result_cache().clear()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def machine() -> MachineParams:
    """A small, round-number machine so expected costs are easy to compute."""
    return MachineParams(ts=10.0, tw=2.0, name="test")


@pytest.fixture
def zero_comm() -> MachineParams:
    return MachineParams(ts=0.0, tw=0.0, name="zero")


def rand_pair(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """A deterministic random matrix pair of order *n*."""
    r = np.random.default_rng(seed)
    return r.standard_normal((n, n)), r.standard_normal((n, n))
