"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.machine import MachineParams


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def machine() -> MachineParams:
    """A small, round-number machine so expected costs are easy to compute."""
    return MachineParams(ts=10.0, tw=2.0, name="test")


@pytest.fixture
def zero_comm() -> MachineParams:
    return MachineParams(ts=0.0, tw=0.0, name="zero")


def rand_pair(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """A deterministic random matrix pair of order *n*."""
    r = np.random.default_rng(seed)
    return r.standard_normal((n, n)), r.standard_normal((n, n))
