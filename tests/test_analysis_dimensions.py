"""Symbolic dimension inference: the DIM rules and the unit algebra.

The acceptance fixtures plant deliberately *wrong* overhead terms — a
dropped ``tw`` factor, a ``ts * words`` product, a time-plus-count
addition — and assert the exact rule fires; every real model in the tree
must evaluate clean.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_source
from repro.analysis.dimensions import (
    TIME,
    ZERO,
    check_cost_function,
    format_dim,
)

CORE = "src/repro/core/probe.py"
REPO = Path(__file__).resolve().parent.parent


def model(body: str) -> str:
    indented = textwrap.indent(textwrap.dedent(body).strip(), "        ")
    return (
        "import math\n\n"
        "class M:\n"
        "    def overhead_terms(self, n, p, machine):\n"
        f"{indented}\n"
    )


def rules_fired(src: str) -> list[str]:
    return sorted(
        {f.rule_id for f in analyze_source(src, CORE, select=["DIM001", "DIM002"])}
    )


def term_issues(body: str):
    tree = ast.parse(model(body))
    fn = next(
        n for n in ast.walk(tree)
        if isinstance(n, ast.FunctionDef) and n.name == "overhead_terms"
    )
    return check_cost_function(fn)


# -- deliberately wrong models (the acceptance fixtures) ----------------------------


def test_dropped_tw_factor_fires_dim001():
    # 2*n**2/sqrt(p) is a word count pretending to be a time
    src = model("return {'tw': 2 * n**2 / p**0.5}")
    assert rules_fired(src) == ["DIM001"]
    issues = term_issues("return {'tw': 2 * n**2 / p**0.5}")
    assert len(issues) == 1 and issues[0].kind == "term"
    assert "no time unit" in issues[0].message


def test_ts_times_words_mixing_fires_dim001():
    # ts * nwords has an unconsumed word count: the words need a tw factor
    src = model("return {'ts': machine.ts * nwords * p}")
    assert rules_fired(src) == ["DIM001"]
    issues = term_issues("return {'ts': machine.ts * nwords * p}")
    assert len(issues) == 1
    assert "unconsumed word" in issues[0].message


def test_ts_tw_product_without_sqrt_fires_dim001():
    # ts*tw is time^2/words; only under a square root is it a time again
    src = model("return {'sqrt': machine.ts * machine.tw * n * p}")
    assert rules_fired(src) == ["DIM001"]
    issues = term_issues("return {'sqrt': machine.ts * machine.tw * n * p}")
    assert "squared/fractional time" in issues[0].message


def test_time_plus_count_addition_fires_dim002():
    src = model("return {'ts': (machine.ts + n) * p}")
    assert rules_fired(src) == ["DIM002"]


# -- correct idioms must stay clean -------------------------------------------------


@pytest.mark.parametrize(
    "body",
    [
        # the classic Cannon/Fox/GK shapes
        "return {'ts': machine.ts * p * math.log2(p), 'tw': machine.tw * n**2 * p**0.5}",
        # Eq. 6 idiom: ts + tw is a per-message time (implicit one-word message)
        "c = machine.ts + machine.tw\nreturn {'total': 5 * c * p * math.log2(p)}",
        # packetized transfer: sqrt(ts*tw) is a time
        "return {'sqrt': 10 * n * p**(2/3) * (machine.ts * machine.tw * math.log2(p) / 3) ** 0.5}",
        # guarded division and max()
        "lg = max(math.log2(p), 1e-12)\nreturn {'ts': machine.ts * p / lg * lg * lg}",
        # unknown time-suffixed helpers count as times
        "return {'total': p * self.comm_time(n, p, machine)}",
        # th per-hop term
        "return {'th': machine.th * p**0.5 * n}",
    ],
)
def test_real_model_idioms_are_clean(body):
    assert rules_fired(model(body)) == []


def test_every_real_model_in_tree_is_dimension_clean():
    from repro.analysis import analyze_paths

    src = REPO / "src" / "repro"
    report = analyze_paths([src], select=["DIM001", "DIM002"])
    assert report.findings == [], "\n".join(f.format() for f in report.findings)


# -- algebra unit tests -------------------------------------------------------------


def eval_expr(expr: str, env_body: str = "pass"):
    issues = term_issues(f"{env_body}\nreturn {{'x': {expr}}}")
    return issues


def test_tw_times_words_is_a_time():
    assert eval_expr("machine.tw * nwords") == []


def test_division_subtracts_degrees():
    # tw / tw is dimensionless -> not a time -> DIM001
    issues = eval_expr("machine.tw / machine.tw")
    assert issues and issues[0].kind == "term"


def test_sqrt_halves_degrees():
    assert eval_expr("(machine.ts * machine.tw) ** 0.5 * nwords ** 0.5 * p") == []


def test_named_word_variables_get_word_dimension():
    issues = eval_expr("machine.ts * block_words")
    assert issues and "unconsumed word" in issues[0].message


def test_assignment_environment_is_tracked():
    assert eval_expr("c * p", env_body="c = machine.ts + machine.tw") == []


def test_format_dim():
    assert format_dim(ZERO) == "dimensionless"
    assert format_dim(TIME) == "time^1"
    assert format_dim((1.0, -1.0, 0.0)) == "time^1·words^-1"
