.PHONY: install test bench bench-smoke experiments examples lint clean

install:
	pip install -e ".[test]"

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only -q

bench-smoke:
	python benchmarks/perf_guard.py --fast --out BENCH_PR1.json

experiments:
	python -m repro.experiments all --fast

examples:
	python examples/quickstart.py
	python examples/algorithm_selection.py
	python examples/scalability_study.py
	python examples/cm5_reproduction.py --fast
	python examples/technology_tradeoff.py
	python examples/memory_constrained_scaling.py
	python examples/paper_walkthrough.py

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
