.PHONY: install test bench bench-smoke bench-compare experiments examples lint resilience-smoke scale-16k-smoke scale-64k-smoke campaign-smoke serve-smoke clean

install:
	pip install -e ".[test]"

test:
	pytest tests/ -q

# Whole-program static analysis (repro.analysis) + strict typing for the
# core, analysis, and annotated simulator layers.  Error-tier findings
# not in analysis_baseline.json fail the build; the JSON and SARIF
# reports are uploaded as CI artifacts.  mypy is optional locally (the
# analysis pass is pure stdlib); CI installs it and runs the full gate.
lint:
	PYTHONPATH=src python -m repro.analysis \
		--baseline analysis_baseline.json \
		--output analysis_report.json \
		--sarif-output analysis.sarif \
		src/repro
	@if python -c "import mypy" >/dev/null 2>&1; then \
		python -m mypy src/repro/core src/repro/analysis src/repro/simulator/engine.py src/repro/simulator/faults.py src/repro/simulator/macro.py src/repro/simulator/topology.py; \
	else \
		echo "mypy not installed; skipping type check (pip install mypy, or rely on CI)"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only -q

bench-smoke:
	python benchmarks/perf_guard.py --fast

# Diff the working-copy perf-guard report against the committed version
# of the baseline and fail on >10% regressions in any gated speedup
# common to both files.  By default both point at BENCH_PR10.json: the
# committed report is the baseline, the file on disk (freshly written
# by perf_guard.py) is the candidate.  Cross-PR baselines (BASE=
# BENCH_PR8.json) are possible but expected to "regress" wherever a
# later PR sped up a shared reference implementation — the per-PR gate
# recalibrations in perf_guard.py record those shifts.
BASE ?= BENCH_PR10.json
NEW ?= BENCH_PR10.json
bench-compare:
	@git show HEAD:$(BASE) > .bench_base.json 2>/dev/null || cp $(BASE) .bench_base.json
	python benchmarks/bench_compare.py .bench_base.json $(NEW)
	@rm -f .bench_base.json

experiments:
	python -m repro.experiments all --fast

# The resilience experiment (fault injection + checkpoint tradeoff) at a
# tiny configuration; RESILIENCE.json is uploaded as a CI artifact.
resilience-smoke:
	python -m repro.experiments resilience --fast --json-out RESILIENCE.json

# A complete 16384-rank Cannon simulation on the event-heap scheduler
# (scaling-large's default).  --no-verify skips the host-side product
# check so the run stays under the tier-1 timeout; correctness at this
# scale is covered by the verified 4096-rank point in `experiments`.
scale-16k-smoke:
	python -m repro.experiments scaling-large --p-values 16384 --n0 2 --no-verify --no-disk-cache

# A complete 65536-rank Cannon simulation.  With --no-verify the
# experiment defaults to the compiled (record->replay) scheduler, whose
# vectorized batch replay finishes the 64k point in seconds; timing is
# fuzz-gated bit-identical to the heap scheduler at p <= 4096 by the
# test suite and perf guard.
scale-64k-smoke:
	python -m repro.experiments scaling-large --p-values 65536 --n0 2 --no-verify --no-disk-cache

# A seeded autopilot battery through the campaign runner: every anomaly
# oracle armed (including the alternate-scheduler cross-check), exit
# non-zero on any finding.  Fully reproducible — the same seed yields
# byte-identical CAMPAIGN.jsonl / CAMPAIGN.report.json; both (plus the
# derived SQLite index) are uploaded as CI artifacts.
campaign-smoke:
	rm -f CAMPAIGN.jsonl CAMPAIGN.sqlite CAMPAIGN.report.json
	python -m repro campaign autopilot --seed 2024 --count 40 \
		--profile smoke --db CAMPAIGN --fail-on-anomaly

# A 500-query mixed load (point predictions, region maps, crossover
# curves, simulator jobs) against a real repro.serve HTTP server on an
# ephemeral port: zero errors and non-zero micro-batch coalescing
# counters are asserted, exit non-zero otherwise.
serve-smoke:
	python benchmarks/serve_loadgen.py --smoke

examples:
	python examples/quickstart.py
	python examples/algorithm_selection.py
	python examples/scalability_study.py
	python examples/cm5_reproduction.py --fast
	python examples/technology_tradeoff.py
	python examples/memory_constrained_scaling.py
	python examples/paper_walkthrough.py

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
