.PHONY: install test bench bench-smoke experiments examples lint resilience-smoke scale-16k-smoke clean

install:
	pip install -e ".[test]"

test:
	pytest tests/ -q

# Whole-program static analysis (repro.analysis) + strict typing for the
# core, analysis, and annotated simulator layers.  Error-tier findings
# not in analysis_baseline.json fail the build; the JSON and SARIF
# reports are uploaded as CI artifacts.  mypy is optional locally (the
# analysis pass is pure stdlib); CI installs it and runs the full gate.
lint:
	PYTHONPATH=src python -m repro.analysis \
		--baseline analysis_baseline.json \
		--output analysis_report.json \
		--sarif-output analysis.sarif \
		src/repro
	@if python -c "import mypy" >/dev/null 2>&1; then \
		python -m mypy src/repro/core src/repro/analysis src/repro/simulator/engine.py src/repro/simulator/faults.py src/repro/simulator/macro.py src/repro/simulator/topology.py; \
	else \
		echo "mypy not installed; skipping type check (pip install mypy, or rely on CI)"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only -q

bench-smoke:
	python benchmarks/perf_guard.py --fast

experiments:
	python -m repro.experiments all --fast

# The resilience experiment (fault injection + checkpoint tradeoff) at a
# tiny configuration; RESILIENCE.json is uploaded as a CI artifact.
resilience-smoke:
	python -m repro.experiments resilience --fast --json-out RESILIENCE.json

# A complete 16384-rank Cannon simulation on the event-heap scheduler
# (scaling-large's default).  --no-verify skips the host-side product
# check so the run stays under the tier-1 timeout; correctness at this
# scale is covered by the verified 4096-rank point in `experiments`.
scale-16k-smoke:
	python -m repro.experiments scaling-large --p-values 16384 --n0 2 --no-verify --no-disk-cache

examples:
	python examples/quickstart.py
	python examples/algorithm_selection.py
	python examples/scalability_study.py
	python examples/cm5_reproduction.py --fast
	python examples/technology_tradeoff.py
	python examples/memory_constrained_scaling.py
	python examples/paper_walkthrough.py

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
